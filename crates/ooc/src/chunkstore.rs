//! Chunked on-disk amplitude storage.
//!
//! A 2^n-amplitude state is split into `2^g` chunk files of `2^l`
//! amplitudes (n = g + l), mirroring the distributed layout: the chunk
//! index is the high (global) bits, the offset within a chunk the low
//! (local) bits. Files live in a caller-supplied directory and hold raw
//! `Complex<R>` component pairs (f64 or f32) in native byte order
//! (little-endian on every supported target); all IO is counted for the
//! bandwidth analysis of the §5 SSD argument.
//!
//! The store is generic over the scalar precision `R`: chunk files hold
//! raw `Complex<R>` pairs (8 bytes per amplitude at f32, 16 at f64), so
//! an f32 run halves both the on-disk footprint and every pass's disk
//! traffic. The default `R = f64` layout is byte-identical to the
//! pre-tiering format.
//!
//! IO is zero-copy: reads and writes move bytes directly between the
//! files and caller-owned amplitude buffers (`Complex<R>` is `#[repr(C)]`
//! with no padding, so a `&[Complex<R>]` reinterprets soundly as `&[u8]`)
//! — no intermediate byte `Vec`s. The pipelined engine's IO threads use
//! [`ChunkReader`] / [`ChunkWriter`] views, which hold their own file
//! handles (independent cursors) opened once per pass, plus local
//! [`IoStats`] merged back on completion. Buffers come from a
//! [`BufferPool`] of 64-byte-aligned allocations recycled across chunks,
//! passes and engine runs, so the steady-state chunk loop performs no
//! heap allocation (asserted by `tests/ooc_alloc.rs`).
//!
//! ## Compressed chunk records
//!
//! With a non-[`Codec::None`] codec every chunk file becomes a sequence
//! of self-describing `qsim-compress` frames instead of fixed-offset raw
//! scalars: a full-chunk write is one frame, a scattered staged file is
//! one frame per piece (appended in write order, each carrying its
//! amplitude offset). Reads slurp the whole file and decode; writes
//! encode into a reusable buffer and truncate to the new length, since
//! encoded sizes vary per generation. The `bytes_read`/`bytes_written`
//! counters stay *physical* (on-disk bytes — the quantity the bandwidth
//! analysis cares about) while `logical_bytes_*` record the amplitude
//! bytes moved; their ratio is [`IoStats::compression_ratio`]. Digests
//! ([`ChunkStore::chunk_digest`]/[`ChunkStore::staged_digest`]) hash the
//! file bytes as stored, i.e. the *encoded* bytes, so the PR 5 staged →
//! manifest → commit crash-consistency protocol is codec-oblivious.

use qsim_compress::{decode_frames, encode_frame, Codec, CodecScratch};
use qsim_util::align::AlignedVec;
use qsim_util::complex::Complex;
use qsim_util::Real;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Disk-traffic and pipeline-overlap counters, defined in
/// `qsim_telemetry` (so the unified backend outcome in `qsim_core` can
/// carry them) and re-exported here where they are produced. See
/// [`qsim_telemetry::IoStats`] for the field-by-field accounting
/// contract.
pub use qsim_telemetry::IoStats;

/// Bytes per stored amplitude at precision `R` (16 for f64, 8 for f32).
#[inline]
pub(crate) fn amp_bytes<R: Real>() -> usize {
    std::mem::size_of::<Complex<R>>()
}

/// Reinterpret amplitudes as raw bytes for file IO. Sound because
/// `Complex<R>` is `#[repr(C)] { re: R, im: R }` with no padding.
#[inline]
pub(crate) fn amps_as_bytes<R: Real>(amps: &[Complex<R>]) -> &[u8] {
    // SAFETY: Complex<R> is repr(C) with no padding; every byte is
    // initialized.
    unsafe { std::slice::from_raw_parts(amps.as_ptr().cast::<u8>(), std::mem::size_of_val(amps)) }
}

/// Mutable byte view of an amplitude buffer (for `read_exact`). Sound in
/// the write direction too: every bit pattern is a valid float.
#[inline]
pub(crate) fn amps_as_bytes_mut<R: Real>(amps: &mut [Complex<R>]) -> &mut [u8] {
    let len = std::mem::size_of_val(amps);
    // SAFETY: see `amps_as_bytes`; any byte pattern is a valid Complex<R>.
    unsafe { std::slice::from_raw_parts_mut(amps.as_mut_ptr().cast::<u8>(), len) }
}

/// A pool of fixed-length 64-byte-aligned amplitude buffers. `get`
/// reuses a free buffer when one is available and counts an allocation
/// otherwise; `prewarm` front-loads those allocations so steady-state
/// traffic is miss-free. Mirrors the PR 1 wire-buffer fabric.
#[derive(Debug, Default)]
pub struct BufferPool<R: Real = f64> {
    len: usize,
    free: Vec<AlignedVec<Complex<R>>>,
    allocs: u64,
}

impl<R: Real> BufferPool<R> {
    pub fn new(len: usize) -> Self {
        Self {
            len,
            free: Vec::new(),
            allocs: 0,
        }
    }

    /// Buffer length served by this pool.
    pub fn buf_len(&self) -> usize {
        self.len
    }

    /// Re-target the pool to a new buffer length, dropping stale
    /// buffers. No-op when the length already matches.
    pub fn ensure_len(&mut self, len: usize) {
        if self.len != len {
            self.len = len;
            self.free.clear();
        }
    }

    /// Allocate up front so the next `count` concurrent `get`s are
    /// miss-free.
    pub fn prewarm(&mut self, count: usize) {
        while self.free.len() < count {
            self.free.push(AlignedVec::new_zeroed(self.len));
            self.allocs += 1;
        }
        // Reserve slot capacity too, so `put` never reallocates the
        // free list during a pass.
        if self.free.capacity() < count {
            self.free.reserve(count - self.free.len());
        }
    }

    /// Take a buffer (pool hit) or allocate one (counted miss).
    pub fn get(&mut self) -> AlignedVec<Complex<R>> {
        self.free.pop().unwrap_or_else(|| {
            self.allocs += 1;
            AlignedVec::new_zeroed(self.len)
        })
    }

    /// Return a buffer to the pool.
    pub fn put(&mut self, buf: AlignedVec<Complex<R>>) {
        assert_eq!(buf.len(), self.len, "foreign buffer returned to pool");
        self.free.push(buf);
    }

    /// Total allocations performed (prewarm + misses).
    pub fn allocs(&self) -> u64 {
        self.allocs
    }
}

/// A directory of 2^g chunk files, each holding 2^l `Complex<R>`
/// amplitudes — raw scalars at [`Codec::None`] (byte-identical to the
/// pre-codec format), encoded frames otherwise.
pub struct ChunkStore<R: Real = f64> {
    dir: PathBuf,
    local_qubits: u32,
    global_qubits: u32,
    stats: IoStats,
    codec: Codec,
    /// Codec working memory + encoded-frame / raw-file staging, reused
    /// across chunks so codec IO stays allocation-free once warm.
    scratch: CodecScratch,
    enc: Vec<u8>,
    /// Staged files this store has appended frames to since the last
    /// commit/clear (codec mode truncates each staged file on first
    /// touch — frames append, they don't overwrite in place).
    staged_open: Vec<bool>,
    _precision: std::marker::PhantomData<R>,
}

impl<R: Real> ChunkStore<R> {
    fn bare(dir: &Path, local_qubits: u32, global_qubits: u32, codec: Codec) -> Self {
        Self {
            dir: dir.to_path_buf(),
            local_qubits,
            global_qubits,
            stats: IoStats::default(),
            codec,
            scratch: CodecScratch::default(),
            enc: Vec::new(),
            staged_open: vec![false; 1usize << global_qubits],
            _precision: std::marker::PhantomData,
        }
    }

    /// Create a store under `dir` (created if missing; existing chunk
    /// files are overwritten) initialized to the given state.
    ///
    /// `init`: amplitude value for every basis state, or use
    /// [`ChunkStore::create_zero_state`] / [`ChunkStore::create_uniform`].
    pub fn create_filled(
        dir: &Path,
        local_qubits: u32,
        global_qubits: u32,
        init: Complex<R>,
    ) -> std::io::Result<Self> {
        Self::create_filled_with(dir, local_qubits, global_qubits, init, Codec::None)
    }

    /// [`ChunkStore::create_filled`] with an explicit chunk codec.
    pub fn create_filled_with(
        dir: &Path,
        local_qubits: u32,
        global_qubits: u32,
        init: Complex<R>,
        codec: Codec,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut store = Self::bare(dir, local_qubits, global_qubits, codec);
        let chunk = vec![init; 1usize << local_qubits];
        for c in 0..store.n_chunks() {
            store.write_chunk_from(c, &chunk)?;
        }
        Ok(store)
    }

    /// Open an existing store (files must have been created by a prior
    /// `create_*` with the same geometry and codec mode).
    pub fn open(dir: &Path, local_qubits: u32, global_qubits: u32) -> std::io::Result<Self> {
        Self::open_with(dir, local_qubits, global_qubits, Codec::None)
    }

    /// [`ChunkStore::open`] with an explicit chunk codec. Raw stores are
    /// size-checked per chunk; framed stores vary in size, so only the
    /// frame headers can vouch for them (verified on every read).
    pub fn open_with(
        dir: &Path,
        local_qubits: u32,
        global_qubits: u32,
        codec: Codec,
    ) -> std::io::Result<Self> {
        let store = Self::bare(dir, local_qubits, global_qubits, codec);
        for c in 0..store.n_chunks() {
            let p = store.chunk_path(c);
            let meta = std::fs::metadata(&p)?;
            if codec.is_none() {
                assert_eq!(
                    meta.len(),
                    (store.chunk_len() * amp_bytes::<R>()) as u64,
                    "chunk {c} has wrong size for this geometry/precision"
                );
            } else if (meta.len() as usize) < qsim_compress::FRAME_HEADER_LEN {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("chunk {c} too short to hold a frame (not a codec store?)"),
                ));
            }
        }
        Ok(store)
    }

    /// |0…0⟩: amplitude 1 in chunk 0 slot 0, zero elsewhere.
    pub fn create_zero_state(dir: &Path, l: u32, g: u32) -> std::io::Result<Self> {
        Self::create_zero_state_with(dir, l, g, Codec::None)
    }

    /// [`ChunkStore::create_zero_state`] with an explicit chunk codec.
    pub fn create_zero_state_with(
        dir: &Path,
        l: u32,
        g: u32,
        codec: Codec,
    ) -> std::io::Result<Self> {
        let mut store = Self::create_filled_with(dir, l, g, Complex::zero(), codec)?;
        let mut chunk0 = store.read_chunk(0)?;
        chunk0[0] = Complex::one();
        store.write_chunk_from(0, &chunk0)?;
        Ok(store)
    }

    /// The uniform superposition (the supremacy starting state, §3.6).
    /// The amplitude is computed with the same expression as
    /// `StateVector::uniform_slice`, so the initial chunks are bitwise
    /// equal to the in-memory engines' initial slices at every tier.
    pub fn create_uniform(dir: &Path, l: u32, g: u32) -> std::io::Result<Self> {
        Self::create_uniform_with(dir, l, g, Codec::None)
    }

    /// [`ChunkStore::create_uniform`] with an explicit chunk codec.
    pub fn create_uniform_with(dir: &Path, l: u32, g: u32, codec: Codec) -> std::io::Result<Self> {
        let n = l + g;
        let amp = R::ONE / R::from_usize(1usize << n).sqrt();
        Self::create_filled_with(dir, l, g, Complex::new(amp, R::ZERO), codec)
    }

    /// The chunk codec this store reads and writes with.
    #[inline]
    pub fn codec(&self) -> Codec {
        self.codec
    }

    #[inline]
    pub fn local_qubits(&self) -> u32 {
        self.local_qubits
    }

    #[inline]
    pub fn global_qubits(&self) -> u32 {
        self.global_qubits
    }

    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.local_qubits + self.global_qubits
    }

    #[inline]
    pub fn n_chunks(&self) -> usize {
        1usize << self.global_qubits
    }

    #[inline]
    pub fn chunk_len(&self) -> usize {
        1usize << self.local_qubits
    }

    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Merge counters measured elsewhere (reader/writer views, pipeline
    /// wait accounting) into this store's totals.
    pub fn absorb(&mut self, stats: &IoStats) {
        self.stats.merge(stats);
    }

    /// Count one full-state streaming pass.
    pub fn count_traversal(&mut self) {
        self.stats.traversals += 1;
    }

    fn chunk_path(&self, c: usize) -> PathBuf {
        self.dir.join(format!("chunk_{c:06}.amps"))
    }

    fn staged_path(&self, c: usize) -> PathBuf {
        self.dir.join(format!("chunk_{c:06}.amps.staged"))
    }

    /// Read chunk `c` directly into a caller-owned buffer.
    pub fn read_chunk_into(&mut self, c: usize, out: &mut [Complex<R>]) -> std::io::Result<()> {
        assert!(c < self.n_chunks(), "chunk {c} out of range");
        assert_eq!(out.len(), self.chunk_len(), "chunk size mismatch");
        let logical = (out.len() * amp_bytes::<R>()) as u64;
        if self.codec.is_none() {
            let t = Instant::now();
            let mut f = File::open(self.chunk_path(c))?;
            f.read_exact(amps_as_bytes_mut(out))?;
            let dt = t.elapsed().as_secs_f64();
            self.stats.read_seconds += dt;
            // Direct store IO is synchronous by definition: the caller
            // waited for all of it (pass-level IO instead attributes wait
            // through the reader/writer views).
            self.stats.io_wait_seconds += dt;
            self.stats.bytes_read += logical;
            self.stats.logical_bytes_read += logical;
        } else {
            let t = Instant::now();
            self.enc.clear();
            File::open(self.chunk_path(c))?.read_to_end(&mut self.enc)?;
            let io_dt = t.elapsed().as_secs_f64();
            let t = Instant::now();
            decode_frames(&self.enc, &mut self.scratch, out)?;
            let codec_dt = t.elapsed().as_secs_f64();
            self.stats.read_seconds += io_dt;
            self.stats.decode_seconds += codec_dt;
            self.stats.io_wait_seconds += io_dt + codec_dt;
            self.stats.bytes_read += self.enc.len() as u64;
            self.stats.logical_bytes_read += logical;
        }
        Ok(())
    }

    /// Read chunk `c` into a fresh `Vec` (testing convenience).
    pub fn read_chunk(&mut self, c: usize) -> std::io::Result<Vec<Complex<R>>> {
        let mut out = vec![Complex::<R>::zero(); self.chunk_len()];
        self.read_chunk_into(c, &mut out)?;
        Ok(out)
    }

    /// Overwrite chunk `c` from a caller-owned buffer.
    pub fn write_chunk_from(&mut self, c: usize, amps: &[Complex<R>]) -> std::io::Result<()> {
        assert!(c < self.n_chunks(), "chunk {c} out of range");
        assert_eq!(amps.len(), self.chunk_len(), "chunk size mismatch");
        let logical = (amps.len() * amp_bytes::<R>()) as u64;
        if self.codec.is_none() {
            let t = Instant::now();
            let mut f = File::create(self.chunk_path(c))?;
            f.write_all(amps_as_bytes(amps))?;
            let dt = t.elapsed().as_secs_f64();
            self.stats.write_seconds += dt;
            self.stats.io_wait_seconds += dt;
            self.stats.bytes_written += logical;
            self.stats.logical_bytes_written += logical;
        } else {
            let t = Instant::now();
            self.enc.clear();
            encode_frame(self.codec, 0, amps, &mut self.scratch, &mut self.enc);
            let codec_dt = t.elapsed().as_secs_f64();
            let t = Instant::now();
            // `File::create` truncates, discarding any longer previous
            // generation of this chunk (encoded sizes vary).
            let mut f = File::create(self.chunk_path(c))?;
            f.write_all(&self.enc)?;
            let io_dt = t.elapsed().as_secs_f64();
            self.stats.write_seconds += io_dt;
            self.stats.encode_seconds += codec_dt;
            self.stats.io_wait_seconds += io_dt + codec_dt;
            self.stats.bytes_written += self.enc.len() as u64;
            self.stats.logical_bytes_written += logical;
        }
        Ok(())
    }

    /// Write a sub-range of the staged (shadow) copy of chunk `c`,
    /// creating and sizing the staged file on first touch. The fused
    /// external all-to-all assembles each destination piece-by-piece this
    /// way, so no full destination chunk is ever held in memory during
    /// the scatter pass.
    pub fn write_staged_range(
        &mut self,
        c: usize,
        off: usize,
        amps: &[Complex<R>],
    ) -> std::io::Result<()> {
        assert!(off + amps.len() <= self.chunk_len());
        let logical = (amps.len() * amp_bytes::<R>()) as u64;
        if self.codec.is_none() {
            let t = Instant::now();
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(self.staged_path(c))?;
            let want = (self.chunk_len() * amp_bytes::<R>()) as u64;
            if f.metadata()?.len() < want {
                f.set_len(want)?;
            }
            f.seek(SeekFrom::Start((off * amp_bytes::<R>()) as u64))?;
            f.write_all(amps_as_bytes(amps))?;
            let dt = t.elapsed().as_secs_f64();
            self.stats.write_seconds += dt;
            self.stats.io_wait_seconds += dt;
            self.stats.bytes_written += logical;
            self.stats.logical_bytes_written += logical;
        } else {
            // Codec mode appends one offset-carrying frame per piece:
            // the first touch since the last commit/clear truncates any
            // stale shadow, later pieces append at the end.
            let t = Instant::now();
            self.enc.clear();
            encode_frame(self.codec, off, amps, &mut self.scratch, &mut self.enc);
            let codec_dt = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let first_touch = !self.staged_open[c];
            self.staged_open[c] = true;
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(first_touch)
                .open(self.staged_path(c))?;
            f.seek(SeekFrom::End(0))?;
            f.write_all(&self.enc)?;
            let io_dt = t.elapsed().as_secs_f64();
            self.stats.write_seconds += io_dt;
            self.stats.encode_seconds += codec_dt;
            self.stats.io_wait_seconds += io_dt + codec_dt;
            self.stats.bytes_written += self.enc.len() as u64;
            self.stats.logical_bytes_written += logical;
        }
        Ok(())
    }

    /// Promote all staged chunks written by `write_staged_range` (on the
    /// store or any [`ChunkWriter`] view), renaming each over its live
    /// counterpart.
    ///
    /// Crash-consistent ordering: every staged file is `sync_all`ed
    /// *before* the first rename, and the directory is fsynced after the
    /// last, so a crash anywhere in the commit leaves each chunk either
    /// fully old or fully new — never a renamed file whose contents were
    /// still in the page cache. (A *mix* of old and new chunks across the
    /// store is still possible mid-commit; the checkpoint manifest's
    /// per-chunk digests let [`ChunkStore::open_verified`] roll that
    /// forward.)
    pub fn commit_staged(&mut self) -> std::io::Result<()> {
        let t = Instant::now();
        let mut renamed = false;
        for c in 0..self.n_chunks() {
            let staged = self.staged_path(c);
            if staged.exists() {
                File::open(&staged)?.sync_all()?;
                std::fs::rename(staged, self.chunk_path(c))?;
                renamed = true;
            }
        }
        if renamed {
            File::open(&self.dir)?.sync_all()?;
        }
        self.staged_open.iter_mut().for_each(|b| *b = false);
        let dt = t.elapsed().as_secs_f64();
        self.stats.write_seconds += dt;
        self.stats.io_wait_seconds += dt;
        Ok(())
    }

    /// FNV-1a digest of live chunk `c`'s current on-disk bytes.
    pub fn chunk_digest(&mut self, c: usize) -> std::io::Result<u64> {
        assert!(c < self.n_chunks(), "chunk {c} out of range");
        let t = Instant::now();
        let bytes = std::fs::read(self.chunk_path(c))?;
        let dt = t.elapsed().as_secs_f64();
        self.stats.read_seconds += dt;
        self.stats.io_wait_seconds += dt;
        self.stats.bytes_read += bytes.len() as u64;
        Ok(qsim_core::checkpoint::fnv1a64(&bytes))
    }

    /// FNV-1a digest of chunk `c`'s *staged* file (the bytes that would
    /// become live at the next [`ChunkStore::commit_staged`]); falls back
    /// to the live chunk when nothing is staged.
    pub fn staged_digest(&mut self, c: usize) -> std::io::Result<u64> {
        assert!(c < self.n_chunks(), "chunk {c} out of range");
        let staged = self.staged_path(c);
        if !staged.exists() {
            return self.chunk_digest(c);
        }
        let t = Instant::now();
        let bytes = std::fs::read(staged)?;
        let dt = t.elapsed().as_secs_f64();
        self.stats.read_seconds += dt;
        self.stats.io_wait_seconds += dt;
        self.stats.bytes_read += bytes.len() as u64;
        Ok(qsim_core::checkpoint::fnv1a64(&bytes))
    }

    /// `sync_all` every staged file so its bytes are durable before a
    /// manifest referencing them is published.
    pub fn sync_staged(&self) -> std::io::Result<()> {
        for c in 0..self.n_chunks() {
            let staged = self.staged_path(c);
            if staged.exists() {
                File::open(staged)?.sync_all()?;
            }
        }
        Ok(())
    }

    /// Delete every stray staged file. A fresh checkpointed run over a
    /// reused directory must start from live chunks only — a leftover
    /// shadow from an abandoned pass would otherwise be folded into the
    /// next `commit_staged`.
    pub fn clear_staged(&mut self) -> std::io::Result<()> {
        for c in 0..self.n_chunks() {
            let staged = self.staged_path(c);
            if staged.exists() {
                std::fs::remove_file(staged)?;
            }
        }
        self.staged_open.iter_mut().for_each(|b| *b = false);
        Ok(())
    }

    /// Open a store and reconcile it against a manifest's per-chunk
    /// `digests`, recovering from a crash at any point of the commit
    /// protocol:
    ///
    /// * a staged file whose digest matches the manifest is rolled
    ///   *forward* (synced and renamed live) — the crash hit after the
    ///   manifest was published but before the rename;
    /// * any other staged file is deleted — the crash hit before the
    ///   manifest flipped, so the staged bytes belong to an abandoned
    ///   pass;
    /// * every live chunk must then match its digest, or the store is
    ///   rejected as torn ([`std::io::ErrorKind::InvalidData`]).
    pub fn open_verified(
        dir: &Path,
        local_qubits: u32,
        global_qubits: u32,
        digests: &[u64],
    ) -> std::io::Result<Self> {
        Self::open_verified_with(dir, local_qubits, global_qubits, digests, Codec::None)
    }

    /// [`ChunkStore::open_verified`] with an explicit chunk codec. The
    /// digests hash the bytes as stored — encoded frames under a codec —
    /// so the roll-forward protocol is identical at every codec.
    pub fn open_verified_with(
        dir: &Path,
        local_qubits: u32,
        global_qubits: u32,
        digests: &[u64],
        codec: Codec,
    ) -> std::io::Result<Self> {
        let mut store = Self::open_with(dir, local_qubits, global_qubits, codec)?;
        assert_eq!(digests.len(), store.n_chunks(), "digest count mismatch");
        let mut renamed = false;
        for (c, &want) in digests.iter().enumerate() {
            let staged = store.staged_path(c);
            if staged.exists() && store.staged_digest(c)? == want {
                File::open(&staged)?.sync_all()?;
                std::fs::rename(&staged, store.chunk_path(c))?;
                renamed = true;
                continue;
            }
            if staged.exists() {
                std::fs::remove_file(&staged)?;
            }
            let got = store.chunk_digest(c)?;
            if got != want {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("chunk {c} digest {got:016x} != manifest {want:016x} (torn store)"),
                ));
            }
        }
        if renamed {
            File::open(dir)?.sync_all()?;
        }
        Ok(store)
    }

    /// Delete all chunk files (cleanup helper for tests/examples).
    pub fn remove_files(&self) -> std::io::Result<()> {
        for c in 0..self.n_chunks() {
            let p = self.chunk_path(c);
            if p.exists() {
                std::fs::remove_file(p)?;
            }
        }
        Ok(())
    }

    /// Load the full state into memory (small n; testing).
    pub fn to_vec(&mut self) -> std::io::Result<Vec<Complex<R>>> {
        let mut out = vec![Complex::<R>::zero(); self.chunk_len() * self.n_chunks()];
        for c in 0..self.n_chunks() {
            let off = c * self.chunk_len();
            let span = &mut out[off..off + self.chunk_len()];
            self.read_chunk_into(c, span)?;
        }
        Ok(out)
    }

    /// A read view with its own file handles (one per chunk, opened
    /// eagerly) and local counters — safe to move onto a prefetch thread
    /// while a [`ChunkWriter`] writes other chunks of the same store.
    pub fn reader(&self) -> std::io::Result<ChunkReader<R>> {
        let files = (0..self.n_chunks())
            .map(|c| File::open(self.chunk_path(c)))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ChunkReader {
            files,
            chunk_len: self.chunk_len(),
            stats: IoStats::default(),
            codec: self.codec,
            scratch: CodecScratch::default(),
            enc: Vec::new(),
            _precision: std::marker::PhantomData,
        })
    }

    /// A write view with its own live handles plus lazily created staged
    /// files. Cursor state is private to the view, so a writeback thread
    /// never races the reader's seeks.
    pub fn writer(&self) -> std::io::Result<ChunkWriter<R>> {
        let files = (0..self.n_chunks())
            .map(|c| OpenOptions::new().write(true).open(self.chunk_path(c)))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ChunkWriter {
            staged_paths: (0..self.n_chunks()).map(|c| self.staged_path(c)).collect(),
            files,
            staged: (0..self.n_chunks()).map(|_| None).collect(),
            chunk_len: self.chunk_len(),
            stats: IoStats::default(),
            codec: self.codec,
            scratch: CodecScratch::default(),
            enc: Vec::new(),
            _precision: std::marker::PhantomData,
        })
    }
}

/// Cached-handle read view of a [`ChunkStore`] (see
/// [`ChunkStore::reader`]). Reads are zero-copy and allocation-free.
pub struct ChunkReader<R: Real = f64> {
    files: Vec<File>,
    chunk_len: usize,
    stats: IoStats,
    codec: Codec,
    scratch: CodecScratch,
    enc: Vec<u8>,
    _precision: std::marker::PhantomData<R>,
}

impl<R: Real> ChunkReader<R> {
    /// Read chunk `c` into `out` through the cached handle.
    pub fn read_into(&mut self, c: usize, out: &mut [Complex<R>]) -> std::io::Result<()> {
        assert_eq!(out.len(), self.chunk_len, "chunk size mismatch");
        let logical = (out.len() * amp_bytes::<R>()) as u64;
        if self.codec.is_none() {
            let t = Instant::now();
            let f = &mut self.files[c];
            f.seek(SeekFrom::Start(0))?;
            f.read_exact(amps_as_bytes_mut(out))?;
            self.stats.read_seconds += t.elapsed().as_secs_f64();
            self.stats.bytes_read += logical;
            self.stats.logical_bytes_read += logical;
        } else {
            let t = Instant::now();
            let f = &mut self.files[c];
            f.seek(SeekFrom::Start(0))?;
            self.enc.clear();
            f.read_to_end(&mut self.enc)?;
            let io_dt = t.elapsed().as_secs_f64();
            let t = Instant::now();
            decode_frames(&self.enc, &mut self.scratch, out)?;
            self.stats.read_seconds += io_dt;
            self.stats.decode_seconds += t.elapsed().as_secs_f64();
            self.stats.bytes_read += self.enc.len() as u64;
            self.stats.logical_bytes_read += logical;
        }
        Ok(())
    }

    /// The chunk codec this view decodes with.
    #[inline]
    pub fn codec(&self) -> Codec {
        self.codec
    }

    pub fn stats(&self) -> IoStats {
        self.stats
    }
}

/// Cached-handle write view of a [`ChunkStore`] (see
/// [`ChunkStore::writer`]). Live-chunk writes are zero-copy and
/// allocation-free; the first staged write per chunk creates the shadow
/// file (once per all-to-all pass).
pub struct ChunkWriter<R: Real = f64> {
    files: Vec<File>,
    staged_paths: Vec<PathBuf>,
    staged: Vec<Option<File>>,
    chunk_len: usize,
    stats: IoStats,
    codec: Codec,
    scratch: CodecScratch,
    enc: Vec<u8>,
    _precision: std::marker::PhantomData<R>,
}

impl<R: Real> ChunkWriter<R> {
    /// Overwrite live chunk `c` through the cached handle.
    pub fn write_chunk_from(&mut self, c: usize, amps: &[Complex<R>]) -> std::io::Result<()> {
        assert_eq!(amps.len(), self.chunk_len, "chunk size mismatch");
        let logical = (amps.len() * amp_bytes::<R>()) as u64;
        if self.codec.is_none() {
            let t = Instant::now();
            let f = &mut self.files[c];
            f.seek(SeekFrom::Start(0))?;
            f.write_all(amps_as_bytes(amps))?;
            self.stats.write_seconds += t.elapsed().as_secs_f64();
            self.stats.bytes_written += logical;
            self.stats.logical_bytes_written += logical;
        } else {
            let t = Instant::now();
            self.enc.clear();
            encode_frame(self.codec, 0, amps, &mut self.scratch, &mut self.enc);
            let codec_dt = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let f = &mut self.files[c];
            f.seek(SeekFrom::Start(0))?;
            f.write_all(&self.enc)?;
            // The cached handle doesn't truncate on write: chop any
            // stale tail left by a longer previous generation, or the
            // next decode would see trailing garbage frames.
            f.set_len(self.enc.len() as u64)?;
            self.stats.write_seconds += t.elapsed().as_secs_f64();
            self.stats.encode_seconds += codec_dt;
            self.stats.bytes_written += self.enc.len() as u64;
            self.stats.logical_bytes_written += logical;
        }
        Ok(())
    }

    /// Write `[off, off+len)` of chunk `c`'s shadow file, creating and
    /// sizing it on first touch. Under a codec the shadow is a sequence
    /// of offset-carrying frames instead: first touch truncates, every
    /// piece appends one frame through the retained handle.
    pub fn write_staged_range(
        &mut self,
        c: usize,
        off: usize,
        amps: &[Complex<R>],
    ) -> std::io::Result<()> {
        assert!(off + amps.len() <= self.chunk_len);
        let logical = (amps.len() * amp_bytes::<R>()) as u64;
        let mut codec_dt = 0.0;
        if !self.codec.is_none() {
            let t = Instant::now();
            self.enc.clear();
            encode_frame(self.codec, off, amps, &mut self.scratch, &mut self.enc);
            codec_dt = t.elapsed().as_secs_f64();
        }
        let t = Instant::now();
        if self.staged[c].is_none() {
            let f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(!self.codec.is_none())
                .open(&self.staged_paths[c])?;
            if self.codec.is_none() {
                f.set_len((self.chunk_len * amp_bytes::<R>()) as u64)?;
            }
            self.staged[c] = Some(f);
        }
        // The slot was just populated above, but a pipeline writeback
        // thread must be able to *report* an impossible state instead of
        // double-panicking while the engine is already unwinding.
        let f = self.staged[c].as_mut().ok_or_else(|| {
            std::io::Error::other(format!("staged handle for chunk {c} missing after open"))
        })?;
        if self.codec.is_none() {
            f.seek(SeekFrom::Start((off * amp_bytes::<R>()) as u64))?;
            f.write_all(amps_as_bytes(amps))?;
            self.stats.bytes_written += logical;
        } else {
            // Retained handle: the cursor already sits at the end of the
            // previous frame, so pieces append in write order.
            f.write_all(&self.enc)?;
            self.stats.bytes_written += self.enc.len() as u64;
        }
        self.stats.write_seconds += t.elapsed().as_secs_f64();
        self.stats.encode_seconds += codec_dt;
        self.stats.logical_bytes_written += logical;
        Ok(())
    }

    /// The chunk codec this view encodes with.
    #[inline]
    pub fn codec(&self) -> Codec {
        self.codec
    }

    pub fn stats(&self) -> IoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use qsim_util::c64;

    #[test]
    fn create_read_write_round_trip() {
        let dir = ScratchDir::new("store_rw");
        let mut store = ChunkStore::create_zero_state(dir.path(), 4, 2).unwrap();
        assert_eq!(store.n_chunks(), 4);
        assert_eq!(store.chunk_len(), 16);
        let c0 = store.read_chunk(0).unwrap();
        assert_eq!(c0[0], c64::one());
        assert!(c0[1..].iter().all(|&a| a == c64::zero()));
        // Write and read back a pattern through pooled buffers.
        let pattern: Vec<c64> = (0..16).map(|i| c64::new(i as f64, -(i as f64))).collect();
        store.write_chunk_from(3, &pattern).unwrap();
        let mut back = vec![c64::zero(); 16];
        store.read_chunk_into(3, &mut back).unwrap();
        assert_eq!(back, pattern);
    }

    #[test]
    fn uniform_state_norm() {
        let dir = ScratchDir::new("store_uniform");
        let mut store = ChunkStore::<f64>::create_uniform(dir.path(), 5, 2).unwrap();
        let v = store.to_vec().unwrap();
        let norm: f64 = v.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reader_writer_views_round_trip() {
        let dir = ScratchDir::new("store_views");
        let mut store = ChunkStore::create_filled(dir.path(), 3, 2, c64::one()).unwrap();
        let pattern: Vec<c64> = (0..8).map(|i| c64::new(i as f64, 0.5)).collect();
        let mut writer = store.writer().unwrap();
        writer.write_chunk_from(2, &pattern).unwrap();
        let wstats = writer.stats();
        assert_eq!(wstats.bytes_written, 8 * 16);
        let mut reader = store.reader().unwrap();
        let mut buf = vec![c64::zero(); 8];
        reader.read_into(2, &mut buf).unwrap();
        assert_eq!(buf, pattern);
        // Re-reads through the same cached handle work (seek resets).
        reader.read_into(2, &mut buf).unwrap();
        assert_eq!(buf, pattern);
        store.absorb(&reader.stats());
        store.absorb(&wstats);
        assert_eq!(store.stats().bytes_read, 2 * 8 * 16);
    }

    #[test]
    fn staged_range_assembly_commits_atomically() {
        let dir = ScratchDir::new("store_staged");
        let mut store = ChunkStore::create_filled(dir.path(), 3, 1, c64::one()).unwrap();
        // Assemble chunk 0's shadow from two half-chunk pieces, out of
        // order; the live chunk must be untouched until commit.
        let hi = vec![c64::new(2.0, 0.0); 4];
        let lo = vec![c64::new(3.0, 0.0); 4];
        let mut writer = store.writer().unwrap();
        writer.write_staged_range(0, 4, &hi).unwrap();
        writer.write_staged_range(0, 0, &lo).unwrap();
        let wstats = writer.stats();
        drop(writer);
        assert_eq!(store.read_chunk(0).unwrap(), vec![c64::one(); 8]);
        store.absorb(&wstats);
        store.commit_staged().unwrap();
        let got = store.read_chunk(0).unwrap();
        assert_eq!(&got[..4], &lo[..]);
        assert_eq!(&got[4..], &hi[..]);
    }

    #[test]
    fn io_is_accounted() {
        let dir = ScratchDir::new("store_stats");
        let mut store = ChunkStore::create_filled(dir.path(), 3, 1, c64::zero()).unwrap();
        let created = store.stats();
        assert_eq!(created.bytes_written, 2 * 8 * 16);
        let _ = store.read_chunk(0).unwrap();
        assert_eq!(store.stats().bytes_read, 8 * 16);
        assert!(store.stats().write_seconds >= 0.0);
        store.count_traversal();
        assert_eq!(store.stats().traversals, 1);
    }

    #[test]
    fn buffer_pool_reuses_and_counts() {
        let mut pool = BufferPool::<f64>::new(32);
        pool.prewarm(2);
        assert_eq!(pool.allocs(), 2);
        let a = pool.get();
        let b = pool.get();
        assert_eq!(pool.allocs(), 2, "prewarmed gets are miss-free");
        let c = pool.get();
        assert_eq!(pool.allocs(), 3, "third concurrent buffer is a miss");
        pool.put(a);
        pool.put(b);
        pool.put(c);
        for _ in 0..10 {
            let x = pool.get();
            pool.put(x);
        }
        assert_eq!(pool.allocs(), 3, "steady-state gets never allocate");
        pool.ensure_len(64);
        assert_eq!(pool.buf_len(), 64);
        let d = pool.get();
        assert_eq!(d.len(), 64);
    }

    #[test]
    fn codec_store_round_trips_and_compresses() {
        let dir = ScratchDir::new("store_codec");
        let mut store =
            ChunkStore::create_uniform_with(dir.path(), 6, 2, Codec::ShuffleRle).unwrap();
        // The uniform state is maximally degenerate: far fewer encoded
        // bytes than the 64 * 16 raw bytes per chunk.
        let created = store.stats();
        assert_eq!(created.logical_bytes_written, 4 * 64 * 16);
        assert!(
            created.bytes_written < created.logical_bytes_written / 4,
            "uniform chunks should compress >4x, got {} / {}",
            created.bytes_written,
            created.logical_bytes_written
        );
        assert!(created.compression_ratio() > 4.0);
        let v = store.to_vec().unwrap();
        let amp = 1.0 / 16.0;
        assert!(v.iter().all(|a| a.re == amp && a.im == 0.0));

        // Shrinking rewrites through the cached writer handle must not
        // leave stale frame tails behind.
        let mut writer = store.writer().unwrap();
        let noise: Vec<c64> = (0..64)
            .map(|i| {
                let mut s = qsim_util::SplitMix64::new(i as u64 + 7);
                c64::new(f64::from_bits(s.next_u64()), f64::from_bits(s.next_u64()))
            })
            .collect();
        writer.write_chunk_from(1, &noise).unwrap(); // incompressible (long file)
        writer.write_chunk_from(1, &vec![c64::zero(); 64]).unwrap(); // tiny (short file)
        let wstats = writer.stats();
        drop(writer);
        store.absorb(&wstats);
        let mut back = vec![c64::one(); 64];
        store.read_chunk_into(1, &mut back).unwrap();
        assert!(back.iter().all(|&a| a == c64::zero()));
        assert!(store.stats().encode_seconds >= 0.0);
        assert!(store.stats().decode_seconds >= 0.0);
    }

    #[test]
    fn codec_staged_scatter_commits_and_reopens() {
        let dir = ScratchDir::new("store_codec_staged");
        let mut store =
            ChunkStore::create_filled_with(dir.path(), 3, 1, c64::one(), Codec::ShuffleRle)
                .unwrap();
        let hi = vec![c64::new(2.0, 0.0); 4];
        let lo = vec![c64::new(3.0, 0.0); 4];
        let mut writer = store.writer().unwrap();
        writer.write_staged_range(0, 4, &hi).unwrap();
        writer.write_staged_range(0, 0, &lo).unwrap();
        drop(writer);
        // Live chunk untouched until commit.
        assert_eq!(store.read_chunk(0).unwrap(), vec![c64::one(); 8]);
        store.commit_staged().unwrap();
        let got = store.read_chunk(0).unwrap();
        assert_eq!(&got[..4], &lo[..]);
        assert_eq!(&got[4..], &hi[..]);
        // Direct store staged writes go through first-touch truncation
        // too: a second scatter generation must not inherit old frames.
        store.write_staged_range(1, 0, &lo).unwrap();
        store.write_staged_range(1, 4, &hi).unwrap();
        store.commit_staged().unwrap();
        let got = store.read_chunk(1).unwrap();
        assert_eq!(&got[..4], &lo[..]);
        assert_eq!(&got[4..], &hi[..]);
        // Reopen with the matching codec and verify digests round-trip.
        let d0 = store.chunk_digest(0).unwrap();
        let d1 = store.chunk_digest(1).unwrap();
        drop(store);
        let mut re =
            ChunkStore::<f64>::open_verified_with(dir.path(), 3, 1, &[d0, d1], Codec::ShuffleRle)
                .unwrap();
        let got = re.read_chunk(1).unwrap();
        assert_eq!(&got[..4], &lo[..]);
        assert_eq!(&got[4..], &hi[..]);
    }

    #[test]
    fn overlap_fraction_bounds() {
        let mut s = IoStats {
            read_seconds: 1.0,
            write_seconds: 1.0,
            io_wait_seconds: 0.5,
            ..IoStats::default()
        };
        assert!((s.overlap_fraction() - 0.75).abs() < 1e-12);
        s.io_wait_seconds = 5.0;
        assert_eq!(s.overlap_fraction(), 0.0);
        assert_eq!(IoStats::default().overlap_fraction(), 0.0);
    }
}
