//! Chunked on-disk amplitude storage.
//!
//! A 2^n-amplitude state is split into `2^g` chunk files of `2^l`
//! amplitudes (n = g + l), mirroring the distributed layout: the chunk
//! index is the high (global) bits, the offset within a chunk the low
//! (local) bits. Files live in a caller-supplied directory and hold raw
//! little-endian f64 pairs; all IO is counted for the bandwidth analysis
//! of the §5 SSD argument.

use qsim_util::c64;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Byte-level IO counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    pub bytes_read: u64,
    pub bytes_written: u64,
}

/// A directory of 2^g chunk files, each holding 2^l amplitudes.
pub struct ChunkStore {
    dir: PathBuf,
    local_qubits: u32,
    global_qubits: u32,
    stats: IoStats,
}

impl ChunkStore {
    /// Create a store under `dir` (created if missing; existing chunk
    /// files are overwritten) initialized to the given state.
    ///
    /// `init`: amplitude value for every basis state, or use
    /// [`ChunkStore::create_zero_state`] / [`ChunkStore::create_uniform`].
    pub fn create_filled(
        dir: &Path,
        local_qubits: u32,
        global_qubits: u32,
        init: c64,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut store = Self {
            dir: dir.to_path_buf(),
            local_qubits,
            global_qubits,
            stats: IoStats::default(),
        };
        let chunk = vec![init; 1usize << local_qubits];
        for c in 0..store.n_chunks() {
            store.write_chunk(c, &chunk)?;
        }
        Ok(store)
    }

    /// Open an existing store (files must have been created by a prior
    /// `create_*` with the same geometry).
    pub fn open(dir: &Path, local_qubits: u32, global_qubits: u32) -> std::io::Result<Self> {
        let store = Self {
            dir: dir.to_path_buf(),
            local_qubits,
            global_qubits,
            stats: IoStats::default(),
        };
        for c in 0..store.n_chunks() {
            let p = store.chunk_path(c);
            let meta = std::fs::metadata(&p)?;
            assert_eq!(
                meta.len(),
                (store.chunk_len() * 16) as u64,
                "chunk {c} has wrong size for this geometry"
            );
        }
        Ok(store)
    }

    /// |0…0⟩: amplitude 1 in chunk 0 slot 0, zero elsewhere.
    pub fn create_zero_state(dir: &Path, l: u32, g: u32) -> std::io::Result<Self> {
        let mut store = Self::create_filled(dir, l, g, c64::zero())?;
        let mut chunk0 = store.read_chunk(0)?;
        chunk0[0] = c64::one();
        store.write_chunk(0, &chunk0)?;
        Ok(store)
    }

    /// The uniform superposition (the supremacy starting state, §3.6).
    pub fn create_uniform(dir: &Path, l: u32, g: u32) -> std::io::Result<Self> {
        let n = l + g;
        let amp = 1.0 / ((1u64 << n) as f64).sqrt();
        Self::create_filled(dir, l, g, c64::new(amp, 0.0))
    }

    #[inline]
    pub fn local_qubits(&self) -> u32 {
        self.local_qubits
    }

    #[inline]
    pub fn global_qubits(&self) -> u32 {
        self.global_qubits
    }

    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.local_qubits + self.global_qubits
    }

    #[inline]
    pub fn n_chunks(&self) -> usize {
        1usize << self.global_qubits
    }

    #[inline]
    pub fn chunk_len(&self) -> usize {
        1usize << self.local_qubits
    }

    pub fn stats(&self) -> IoStats {
        self.stats
    }

    fn chunk_path(&self, c: usize) -> PathBuf {
        self.dir.join(format!("chunk_{c:06}.amps"))
    }

    /// Read chunk `c` fully into memory.
    pub fn read_chunk(&mut self, c: usize) -> std::io::Result<Vec<c64>> {
        assert!(c < self.n_chunks(), "chunk {c} out of range");
        let mut f = File::open(self.chunk_path(c))?;
        let mut bytes = vec![0u8; self.chunk_len() * 16];
        f.read_exact(&mut bytes)?;
        self.stats.bytes_read += bytes.len() as u64;
        Ok(bytes_to_amps(&bytes))
    }

    /// Overwrite chunk `c`.
    pub fn write_chunk(&mut self, c: usize, amps: &[c64]) -> std::io::Result<()> {
        assert_eq!(amps.len(), self.chunk_len(), "chunk size mismatch");
        let bytes = amps_to_bytes(amps);
        let mut f = File::create(self.chunk_path(c))?;
        f.write_all(&bytes)?;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Read a sub-range `[off, off+len)` of chunk `c` (for the external
    /// all-to-all's gather pass).
    pub fn read_chunk_range(
        &mut self,
        c: usize,
        off: usize,
        len: usize,
    ) -> std::io::Result<Vec<c64>> {
        assert!(off + len <= self.chunk_len());
        let mut f = File::open(self.chunk_path(c))?;
        f.seek(SeekFrom::Start((off * 16) as u64))?;
        let mut bytes = vec![0u8; len * 16];
        f.read_exact(&mut bytes)?;
        self.stats.bytes_read += bytes.len() as u64;
        Ok(bytes_to_amps(&bytes))
    }

    /// Write a sub-range of chunk `c` in place.
    pub fn write_chunk_range(&mut self, c: usize, off: usize, amps: &[c64]) -> std::io::Result<()> {
        assert!(off + amps.len() <= self.chunk_len());
        let mut f = OpenOptions::new().write(true).open(self.chunk_path(c))?;
        f.seek(SeekFrom::Start((off * 16) as u64))?;
        let bytes = amps_to_bytes(amps);
        f.write_all(&bytes)?;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Write the staged (shadow) copy of chunk `c` — used by the external
    /// all-to-all so sources remain readable while destinations are
    /// assembled. [`ChunkStore::commit_staged`] atomically renames every
    /// staged file over its live counterpart.
    pub fn write_staged(&mut self, c: usize, amps: &[c64]) -> std::io::Result<()> {
        assert_eq!(amps.len(), self.chunk_len(), "chunk size mismatch");
        let bytes = amps_to_bytes(amps);
        let mut f = File::create(self.staged_path(c))?;
        f.write_all(&bytes)?;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Write a sub-range of the staged (shadow) copy of chunk `c`,
    /// creating and sizing the staged file on first touch. The fused
    /// external all-to-all assembles each destination piece-by-piece this
    /// way, so no full destination chunk is ever held in memory during
    /// the scatter pass.
    pub fn write_staged_range(
        &mut self,
        c: usize,
        off: usize,
        amps: &[c64],
    ) -> std::io::Result<()> {
        assert!(off + amps.len() <= self.chunk_len());
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.staged_path(c))?;
        let want = (self.chunk_len() * 16) as u64;
        if f.metadata()?.len() < want {
            f.set_len(want)?;
        }
        f.seek(SeekFrom::Start((off * 16) as u64))?;
        let bytes = amps_to_bytes(amps);
        f.write_all(&bytes)?;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Promote all staged chunks written by [`ChunkStore::write_staged`].
    pub fn commit_staged(&mut self) -> std::io::Result<()> {
        for c in 0..self.n_chunks() {
            let staged = self.staged_path(c);
            if staged.exists() {
                std::fs::rename(staged, self.chunk_path(c))?;
            }
        }
        Ok(())
    }

    fn staged_path(&self, c: usize) -> PathBuf {
        self.dir.join(format!("chunk_{c:06}.amps.staged"))
    }

    /// Delete all chunk files (cleanup helper for tests/examples).
    pub fn remove_files(&self) -> std::io::Result<()> {
        for c in 0..self.n_chunks() {
            let p = self.chunk_path(c);
            if p.exists() {
                std::fs::remove_file(p)?;
            }
        }
        Ok(())
    }

    /// Load the full state into memory (small n; testing).
    pub fn to_vec(&mut self) -> std::io::Result<Vec<c64>> {
        let mut out = Vec::with_capacity(self.chunk_len() * self.n_chunks());
        for c in 0..self.n_chunks() {
            out.extend(self.read_chunk(c)?);
        }
        Ok(out)
    }
}

fn amps_to_bytes(amps: &[c64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(amps.len() * 16);
    for a in amps {
        out.extend_from_slice(&a.re.to_le_bytes());
        out.extend_from_slice(&a.im.to_le_bytes());
    }
    out
}

fn bytes_to_amps(bytes: &[u8]) -> Vec<c64> {
    assert_eq!(bytes.len() % 16, 0);
    bytes
        .chunks_exact(16)
        .map(|b| {
            c64::new(
                f64::from_le_bytes(b[0..8].try_into().unwrap()),
                f64::from_le_bytes(b[8..16].try_into().unwrap()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qsim_ooc_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn create_read_write_round_trip() {
        let dir = tmpdir("rw");
        let mut store = ChunkStore::create_zero_state(&dir, 4, 2).unwrap();
        assert_eq!(store.n_chunks(), 4);
        assert_eq!(store.chunk_len(), 16);
        let c0 = store.read_chunk(0).unwrap();
        assert_eq!(c0[0], c64::one());
        assert!(c0[1..].iter().all(|&a| a == c64::zero()));
        // Write and read back a pattern.
        let pattern: Vec<c64> = (0..16).map(|i| c64::new(i as f64, -(i as f64))).collect();
        store.write_chunk(3, &pattern).unwrap();
        assert_eq!(store.read_chunk(3).unwrap(), pattern);
        store.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uniform_state_norm() {
        let dir = tmpdir("uniform");
        let mut store = ChunkStore::create_uniform(&dir, 5, 2).unwrap();
        let v = store.to_vec().unwrap();
        let norm: f64 = v.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        store.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn range_io() {
        let dir = tmpdir("range");
        let mut store = ChunkStore::create_filled(&dir, 4, 1, c64::zero()).unwrap();
        let patch = vec![c64::new(7.0, 8.0); 4];
        store.write_chunk_range(1, 8, &patch).unwrap();
        let got = store.read_chunk_range(1, 8, 4).unwrap();
        assert_eq!(got, patch);
        // Neighbouring entries untouched.
        let full = store.read_chunk(1).unwrap();
        assert_eq!(full[7], c64::zero());
        assert_eq!(full[12], c64::zero());
        store.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn staged_range_assembly_commits_atomically() {
        let dir = tmpdir("staged_range");
        let mut store = ChunkStore::create_filled(&dir, 3, 1, c64::one()).unwrap();
        // Assemble chunk 0's shadow from two half-chunk pieces, out of
        // order; the live chunk must be untouched until commit.
        let hi = vec![c64::new(2.0, 0.0); 4];
        let lo = vec![c64::new(3.0, 0.0); 4];
        store.write_staged_range(0, 4, &hi).unwrap();
        store.write_staged_range(0, 0, &lo).unwrap();
        assert_eq!(store.read_chunk(0).unwrap(), vec![c64::one(); 8]);
        store.commit_staged().unwrap();
        let got = store.read_chunk(0).unwrap();
        assert_eq!(&got[..4], &lo[..]);
        assert_eq!(&got[4..], &hi[..]);
        store.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_is_accounted() {
        let dir = tmpdir("stats");
        let mut store = ChunkStore::create_filled(&dir, 3, 1, c64::zero()).unwrap();
        let created = store.stats();
        assert_eq!(created.bytes_written, 2 * 8 * 16);
        let _ = store.read_chunk(0).unwrap();
        assert_eq!(store.stats().bytes_read, 8 * 16);
        store.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_codec_round_trips() {
        let amps = vec![c64::new(1.5, -2.25), c64::new(f64::MIN_POSITIVE, 1e300)];
        assert_eq!(bytes_to_amps(&amps_to_bytes(&amps)), amps);
    }
}
