//! [`Backend`] implementation over the out-of-core engine.
//!
//! Lives here rather than in `qsim_core::backend` because the OOC
//! engine sits above the core crate in the dependency order; the trait
//! itself (and the single/dist impls) are defined below. Checkpoint
//! unit: one *streaming pass* (stage run, swap scatter, swap
//! unpermute) — see [`OocSimulator::total_passes`].

use crate::exec::{CrashPoint, OocCheckpoint, OocSimulator};
use crate::scratch::ScratchDir;
use qsim_circuit::Circuit;
use qsim_core::backend::{plan_partitioned, Backend, BackendOutcome, BackendPlan, BackendStats};
use qsim_core::planner::{ProgressBackend, ScheduleMode};
use qsim_core::SimError;
use qsim_kernels::SweepDispatch;
use qsim_telemetry::Telemetry;
use std::path::{Path, PathBuf};

/// [`Backend`] over [`OocSimulator`]: `2^g` chunk files play the role
/// of the distributed engine's ranks, so planning is identical to
/// [`qsim_core::DistBackend`] and only the execution tier differs.
///
/// The chunk store needs a directory even when the caller never asked
/// for checkpointing; a run without [`Backend::checkpoint`] configured
/// materializes its state in a fresh self-cleaning [`ScratchDir`].
pub struct OocBackend<R: SweepDispatch = f64> {
    pub sim: OocSimulator<R>,
    /// Chunk count (`2^g`) — the partition analogue of `n_ranks`.
    pub n_chunks: usize,
    pub kmax: u32,
    pub schedule_mode: ScheduleMode,
    pub schedule_cache: Option<PathBuf>,
    pub search_budget: usize,
    dir: Option<PathBuf>,
    resume: bool,
    gather: bool,
    scratch: Option<ScratchDir>,
}

impl<R: SweepDispatch> OocBackend<R> {
    pub fn new(sim: OocSimulator<R>, n_chunks: usize) -> Self {
        Self {
            sim,
            n_chunks,
            kmax: 4,
            schedule_mode: ScheduleMode::Greedy,
            schedule_cache: None,
            search_budget: qsim_sched::SearchConfig::default().budget,
            dir: None,
            resume: false,
            gather: false,
            scratch: None,
        }
    }

    /// The chunk-store directory this backend runs against, when one is
    /// pinned (checkpointing); `None` means each run uses a fresh
    /// scratch directory.
    pub fn store_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

impl<R: SweepDispatch> Backend<R> for OocBackend<R> {
    fn name(&self) -> &'static str {
        "ooc"
    }

    fn telemetry(&self) -> Telemetry {
        self.sim.config.telemetry.clone()
    }

    fn progress_backend(&self) -> ProgressBackend {
        ProgressBackend::Ooc
    }

    fn checkpoint(&mut self, dir: &Path) {
        self.dir = Some(dir.to_path_buf());
    }

    fn resume(&mut self, dir: &Path) {
        self.dir = Some(dir.to_path_buf());
        self.resume = true;
    }

    fn gather_state(&mut self, gather: bool) {
        self.gather = gather;
    }

    fn plan(&self, circuit: &Circuit) -> Result<BackendPlan, SimError> {
        let mut plan = plan_partitioned::<R>(
            circuit,
            self.n_chunks,
            self.kmax,
            self.schedule_mode,
            self.schedule_cache.clone(),
            self.search_budget,
            &self.sim.config.telemetry,
        )?;
        // The OOC checkpoint unit is the streaming pass, not the stage
        // run the shared planner counts.
        plan.total_units = self.sim.total_passes(&plan.schedule);
        Ok(plan)
    }

    fn run_to_stage(
        &mut self,
        plan: &BackendPlan,
        stop_after: Option<usize>,
    ) -> Result<BackendOutcome<R>, SimError> {
        if let Some(stop) = stop_after {
            if self.dir.is_none() {
                return Err(SimError::Checkpoint(
                    "run_to_stage with a stop point requires a checkpoint directory".into(),
                ));
            }
            if stop == 0 {
                return Err(SimError::Checkpoint(
                    "stop point must name at least one completed unit".into(),
                ));
            }
        }
        // Adopt the plan cache's measured tile budget unless pinned.
        self.sim.config.tile_qubits = self.sim.config.tile_qubits.or(plan.tile_qubits);
        // A pinned directory implies per-pass checkpointing (the chunk
        // store doubles as the checkpoint directory); the injected stop
        // is the crash fired right after pass `stop − 1` committed.
        self.sim.config.checkpoint = self.dir.as_ref().map(|_| OocCheckpoint {
            resume: self.resume,
            crash: stop_after.map(|stop| (stop - 1, CrashPoint::AfterCommit)),
        });
        let dir = match &self.dir {
            Some(d) => d.clone(),
            None => {
                // Fresh scratch per run: the previous run's guard (and
                // its chunk files) drop here.
                let s = ScratchDir::new("backend");
                let path = s.path().to_path_buf();
                self.scratch = Some(s);
                path
            }
        };
        let result = if self.gather {
            self.sim
                .try_run_gather(&dir, &plan.schedule, plan.init_uniform)
                .map(|(out, state)| (out, Some(state)))
        } else {
            self.sim
                .try_run(&dir, &plan.schedule, plan.init_uniform)
                .map(|out| (out, None))
        };
        // One-shot kill switch: a later run on this backend must not
        // crash again.
        if let Some(cp) = self.sim.config.checkpoint.as_mut() {
            cp.crash = None;
        }
        let (out, state) = result?;
        Ok(BackendOutcome {
            norm: out.norm,
            entropy: out.entropy,
            sim_seconds: out.sim_seconds,
            stats: BackendStats::Ooc {
                io: out.io,
                sweep: out.sweep,
                runs: out.runs,
            },
            state,
        })
    }
}
