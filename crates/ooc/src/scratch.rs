//! Self-cleaning scratch directories for chunk stores.
//!
//! Every OOC test and bench run materializes a full state on disk; a
//! panicking assertion used to leave those chunk files behind. A
//! [`ScratchDir`] removes its directory on drop — including during
//! unwinding — so test hygiene no longer depends on reaching the
//! explicit cleanup call at the end of each test.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed
/// (recursively) when the guard drops.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Reserve a fresh scratch directory. The name combines `tag`, the
    /// process id and a process-global counter, so concurrent tests (and
    /// repeated runs after a kill -9) never collide. The directory
    /// itself is created lazily by `ChunkStore::create_*`.
    pub fn new(tag: &str) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "qsim_ooc_{tag}_{pid}_{id}",
            pid = std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl AsRef<Path> for ScratchDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_directory_on_drop() {
        let kept;
        {
            let s = ScratchDir::new("guard");
            std::fs::create_dir_all(s.path()).unwrap();
            std::fs::write(s.path().join("chunk_000000.amps"), b"x").unwrap();
            kept = s.path().to_path_buf();
            assert!(kept.exists());
        }
        assert!(!kept.exists());
    }

    #[test]
    fn removes_directory_on_panic() {
        let s = ScratchDir::new("panic");
        let path = s.path().to_path_buf();
        let r = std::panic::catch_unwind(move || {
            std::fs::create_dir_all(s.path()).unwrap();
            let _hold = &s;
            panic!("boom");
        });
        assert!(r.is_err());
        assert!(!path.exists());
    }

    #[test]
    fn names_are_unique() {
        let a = ScratchDir::new("uniq");
        let b = ScratchDir::new("uniq");
        assert_ne!(a.path(), b.path());
    }
}
