//! The async double-buffered chunk pipeline.
//!
//! Every full-state pass of the out-of-core engine — a stage run, the
//! all-to-all's scatter, its unpermute — streams all 2^g chunks through
//! memory. [`run_pass`] drives that stream either synchronously (read →
//! compute → write inline, the baseline) or as a three-thread pipeline:
//! a *prefetch* thread reads chunk `c+1..c+depth` ahead, the caller's
//! compute closure runs on the main thread, and a *writeback* thread
//! retires chunk `c−1` — so disk time hides behind compute.
//!
//! Buffers travel a closed loop of bounded [`Pipe`]s (hand-rolled
//! Mutex+Condvar ring; the queue storage is preallocated, so steady
//! state moves `AlignedVec`s without touching the heap):
//!
//! ```text
//!   chunk_free ─→ prefetch ─→ full ─→ compute ─→ wb ─→ writeback ─┐
//!        ↑                                                        │
//!        └────────────────────────────────────────────────────────┘
//! ```
//!
//! Wire buffers (the all-to-all's piece-sized staging) make the same
//! loop through `wire_free`. Total buffers in flight are fixed at pass
//! start (seeded from the engine's [`BufferPool`]s and drained back on
//! completion), which bounds memory *and* guarantees progress: every
//! pipe's capacity is at least the number of buffers that can ever be
//! queued on it, so the only blocking edges are buffer starvation —
//! broken by the writeback thread, which never blocks on anything but
//! its own inbox.
//!
//! Errors on the IO threads land in a shared slot; the compute loop
//! notices the early channel close and aborts, and the first error is
//! returned after both threads join.

use crate::chunkstore::{BufferPool, ChunkStore, IoStats};
use parking_lot::{Condvar, Mutex};
use qsim_telemetry::{Telemetry, TrackHandle};
use qsim_util::align::AlignedVec;
use qsim_util::complex::Complex;
use qsim_util::Real;
use std::collections::VecDeque;
use std::time::Instant;

type Buf<R> = AlignedVec<Complex<R>>;

/// A bounded MPMC channel with close semantics and blocked-time
/// accounting. Storage is preallocated to `cap`; `push`/`pop` return the
/// seconds they spent blocked so callers can attribute pipeline stalls.
pub(crate) struct Pipe<T> {
    inner: Mutex<PipeInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct PipeInner<T> {
    q: VecDeque<T>,
    cap: usize,
    closed: bool,
}

impl<T> Pipe<T> {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        Self {
            inner: Mutex::new(PipeInner {
                q: VecDeque::with_capacity(cap),
                cap,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue, blocking while full. Returns `(rejected, blocked_seconds)`:
    /// a closed pipe rejects the item back to the caller (abort path) so
    /// no buffer is ever lost to a shutdown race.
    pub fn push(&self, item: T) -> (Option<T>, f64) {
        let mut g = self.inner.lock();
        let mut blocked = 0.0;
        if g.q.len() >= g.cap && !g.closed {
            let t = Instant::now();
            while g.q.len() >= g.cap && !g.closed {
                self.not_full.wait(&mut g);
            }
            blocked = t.elapsed().as_secs_f64();
        }
        if g.closed {
            return (Some(item), blocked);
        }
        g.q.push_back(item);
        self.not_empty.notify_one();
        (None, blocked)
    }

    /// Dequeue, blocking while empty. Returns `(item, blocked_seconds)`;
    /// `None` once the pipe is closed *and* drained.
    pub fn pop(&self) -> (Option<T>, f64) {
        let mut g = self.inner.lock();
        let mut blocked = 0.0;
        if g.q.is_empty() && !g.closed {
            let t = Instant::now();
            while g.q.is_empty() && !g.closed {
                self.not_empty.wait(&mut g);
            }
            blocked = t.elapsed().as_secs_f64();
        }
        match g.q.pop_front() {
            Some(item) => {
                self.not_full.notify_one();
                (Some(item), blocked)
            }
            None => (None, blocked),
        }
    }

    /// Close: pending pops drain the queue then see `None`; pushes after
    /// close drop their item.
    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Recover all queued items (post-join buffer drain).
    fn drain_into(&self, out: &mut Vec<T>) {
        let mut g = self.inner.lock();
        while let Some(item) = g.q.pop_front() {
            out.push(item);
        }
    }
}

/// A writeback request.
enum WbItem<R: Real> {
    /// Overwrite live chunk `c` with `buf`, then recycle `buf` as a
    /// chunk buffer.
    Chunk { c: usize, buf: Buf<R> },
    /// Write `buf` at piece-offset `off` of chunk `c`'s staged file,
    /// then recycle `buf` as a wire buffer.
    Staged { c: usize, off: usize, buf: Buf<R> },
    /// Write `buf` as the complete staged contents of chunk `c`, then
    /// recycle `buf` as a chunk buffer (checkpointed passes, where live
    /// chunks must stay untouched until the manifest is durable).
    StagedChunk { c: usize, buf: Buf<R> },
}

/// The compute closure's handle on the pass: where finished chunks go
/// and where staging buffers come from. One implementation per mode so
/// the same closure body drives both the synchronous baseline and the
/// pipeline.
pub(crate) trait PassSink<R: Real> {
    /// Retire `buf` as the new contents of live chunk `c`.
    fn write_chunk(&mut self, c: usize, buf: Buf<R>) -> std::io::Result<()>;
    /// Stage `buf` at `[off, off+len)` of chunk `c`'s shadow file.
    fn write_staged(&mut self, c: usize, off: usize, buf: Buf<R>) -> std::io::Result<()>;
    /// Stage `buf` as the complete shadow contents of chunk `c`; the
    /// live chunk is left untouched (crash-consistent checkpoint passes
    /// commit the whole generation only after the manifest is durable).
    fn write_chunk_staged(&mut self, c: usize, buf: Buf<R>) -> std::io::Result<()>;
    /// Return a chunk buffer without writing it (scatter sources).
    fn recycle_chunk(&mut self, buf: Buf<R>);
    /// Acquire a wire buffer (piece-sized staging).
    fn take_wire(&mut self) -> std::io::Result<Buf<R>>;
}

/// Pass-shape knobs, derived from the engine config.
pub(crate) struct PassConfig {
    /// Overlap IO with compute on dedicated threads.
    pub pipelined: bool,
    /// Chunk buffers in flight (prefetch depth) when pipelined.
    pub depth: usize,
    /// Wire buffers in flight (0 for passes that stage nothing).
    pub wires: usize,
    /// Span/metrics sink: the pipeline threads record per-chunk
    /// read/write spans on their own tracks (`ooc.prefetch`,
    /// `ooc.writeback`) and feed the `chunk_io_ns` histogram. Disabled
    /// handles make all of that a no-op.
    pub telemetry: Telemetry,
}

/// Stream every chunk of `store` through `compute` once. The closure
/// receives `(chunk_index, chunk_buffer, sink)` in ascending chunk order
/// and must hand the buffer back through the sink (as a live write or a
/// recycle). IO counters, wait/compute split and the traversal count
/// are absorbed into the store's stats.
pub(crate) fn run_pass<R: Real, F>(
    store: &mut ChunkStore<R>,
    chunk_pool: &mut BufferPool<R>,
    wire_pool: &mut BufferPool<R>,
    cfg: &PassConfig,
    compute: F,
) -> std::io::Result<()>
where
    F: FnMut(usize, Buf<R>, &mut dyn PassSink<R>) -> std::io::Result<()>,
{
    if cfg.pipelined {
        run_pipelined(store, chunk_pool, wire_pool, cfg, compute)
    } else {
        run_sync(store, chunk_pool, wire_pool, cfg, compute)
    }
}

/// Synchronous baseline: read → compute → write inline. All IO time is
/// exposed to the compute loop, so `io_wait_seconds` ≈ raw IO time and
/// `overlap_fraction` ≈ 0.
struct SyncSink<'a, R: Real> {
    writer: crate::chunkstore::ChunkWriter<R>,
    chunk_pool: &'a mut BufferPool<R>,
    wire_pool: &'a mut BufferPool<R>,
    io_wait: f64,
    track: TrackHandle,
}

impl<R: Real> PassSink<R> for SyncSink<'_, R> {
    fn write_chunk(&mut self, c: usize, buf: Buf<R>) -> std::io::Result<()> {
        let _s = self.track.span_timed("write", c as u64, "chunk_io_ns");
        let t = Instant::now();
        let r = self.writer.write_chunk_from(c, &buf);
        self.io_wait += t.elapsed().as_secs_f64();
        self.chunk_pool.put(buf);
        r
    }

    fn write_staged(&mut self, c: usize, off: usize, buf: Buf<R>) -> std::io::Result<()> {
        let _s = self
            .track
            .span_timed("write staged", c as u64, "chunk_io_ns");
        let t = Instant::now();
        let r = self.writer.write_staged_range(c, off, &buf);
        self.io_wait += t.elapsed().as_secs_f64();
        self.wire_pool.put(buf);
        r
    }

    fn write_chunk_staged(&mut self, c: usize, buf: Buf<R>) -> std::io::Result<()> {
        let _s = self
            .track
            .span_timed("write staged", c as u64, "chunk_io_ns");
        let t = Instant::now();
        let r = self.writer.write_staged_range(c, 0, &buf);
        self.io_wait += t.elapsed().as_secs_f64();
        self.chunk_pool.put(buf);
        r
    }

    fn recycle_chunk(&mut self, buf: Buf<R>) {
        self.chunk_pool.put(buf);
    }

    fn take_wire(&mut self) -> std::io::Result<Buf<R>> {
        Ok(self.wire_pool.get())
    }
}

fn run_sync<R: Real, F>(
    store: &mut ChunkStore<R>,
    chunk_pool: &mut BufferPool<R>,
    wire_pool: &mut BufferPool<R>,
    cfg: &PassConfig,
    mut compute: F,
) -> std::io::Result<()>
where
    F: FnMut(usize, Buf<R>, &mut dyn PassSink<R>) -> std::io::Result<()>,
{
    let n = store.n_chunks();
    let mut reader = store.reader()?;
    let writer = store.writer()?;
    // Synchronous IO happens on the caller's thread; reads and writes
    // share the compute track so the timeline shows the serialization.
    let mut sink = SyncSink {
        writer,
        chunk_pool,
        wire_pool,
        io_wait: 0.0,
        track: cfg.telemetry.track("ooc.compute"),
    };
    let mut compute_seconds = 0.0;
    let mut result = Ok(());
    for c in 0..n {
        let mut buf = sink.chunk_pool.get();
        let t = Instant::now();
        let read = {
            let _s = sink.track.span_timed("read", c as u64, "chunk_io_ns");
            reader.read_into(c, &mut buf)
        };
        if let Err(e) = read {
            sink.chunk_pool.put(buf);
            result = Err(e);
            break;
        }
        sink.io_wait += t.elapsed().as_secs_f64();
        let wait0 = sink.io_wait;
        let t = Instant::now();
        let r = compute(c, buf, &mut sink);
        compute_seconds += t.elapsed().as_secs_f64() - (sink.io_wait - wait0);
        if let Err(e) = r {
            result = Err(e);
            break;
        }
    }
    let loop_stats = IoStats::compute_loop(sink.io_wait, compute_seconds);
    store.absorb(&reader.stats());
    store.absorb(&sink.writer.stats());
    store.absorb(&loop_stats);
    store.count_traversal();
    result
}

/// Pipelined sink: writes become enqueues; the writeback thread recycles
/// buffers into the free pipes.
struct PipeSink<'a, R: Real> {
    wb: &'a Pipe<WbItem<R>>,
    wire_free: &'a Pipe<Buf<R>>,
    io_wait: f64,
}

impl<R: Real> PassSink<R> for PipeSink<'_, R> {
    fn write_chunk(&mut self, c: usize, buf: Buf<R>) -> std::io::Result<()> {
        // The wb pipe only closes after the compute loop finishes, so
        // these pushes are never rejected.
        let (_, blocked) = self.wb.push(WbItem::Chunk { c, buf });
        self.io_wait += blocked;
        Ok(())
    }

    fn write_staged(&mut self, c: usize, off: usize, buf: Buf<R>) -> std::io::Result<()> {
        let (_, blocked) = self.wb.push(WbItem::Staged { c, off, buf });
        self.io_wait += blocked;
        Ok(())
    }

    fn write_chunk_staged(&mut self, c: usize, buf: Buf<R>) -> std::io::Result<()> {
        let (_, blocked) = self.wb.push(WbItem::StagedChunk { c, buf });
        self.io_wait += blocked;
        Ok(())
    }

    fn recycle_chunk(&mut self, buf: Buf<R>) {
        // Route through the writeback thread so ordering with in-flight
        // writes is preserved and the push never blocks (wb capacity
        // covers every buffer in existence).
        let (_, blocked) = self.wb.push(WbItem::Chunk { c: usize::MAX, buf });
        self.io_wait += blocked;
    }

    fn take_wire(&mut self) -> std::io::Result<Buf<R>> {
        let (buf, blocked) = self.wire_free.pop();
        self.io_wait += blocked;
        buf.ok_or_else(|| std::io::Error::other("pipeline aborted: wire pool closed"))
    }
}

fn set_err(slot: &Mutex<Option<std::io::Error>>, e: std::io::Error) {
    let mut g = slot.lock();
    if g.is_none() {
        *g = Some(e);
    }
}

/// Convert an IO thread's panic payload into a typed error the pass can
/// return, instead of re-panicking on the compute thread. IO threads are
/// expected to report failures through the error slot; a panic here
/// means a bug (e.g. a poisoned chunk index), and the caller deserves
/// the message, not an abort.
fn thread_panic_err(which: &str, payload: Box<dyn std::any::Any + Send>) -> std::io::Error {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    std::io::Error::other(format!("{which} thread panicked: {msg}"))
}

fn run_pipelined<R: Real, F>(
    store: &mut ChunkStore<R>,
    chunk_pool: &mut BufferPool<R>,
    wire_pool: &mut BufferPool<R>,
    cfg: &PassConfig,
    mut compute: F,
) -> std::io::Result<()>
where
    F: FnMut(usize, Buf<R>, &mut dyn PassSink<R>) -> std::io::Result<()>,
{
    let n = store.n_chunks();
    let depth = cfg.depth.max(1);
    let reader = store.reader()?;
    let writer = store.writer()?;

    // Capacities are sized so no pipe can ever reject a buffer that
    // exists: `depth + 1` chunk buffers circulate (+1 for a compute-held
    // scratch, see the unpermute pass), `cfg.wires` wire buffers.
    let chunk_free = Pipe::<Buf<R>>::new(depth + 1);
    let full = Pipe::<(usize, Buf<R>)>::new(depth + 1);
    let wb = Pipe::<WbItem<R>>::new(depth + 1 + cfg.wires.max(1));
    let wire_free = Pipe::<Buf<R>>::new(cfg.wires.max(1));
    for _ in 0..depth {
        chunk_free.push(chunk_pool.get());
    }
    for _ in 0..cfg.wires {
        wire_free.push(wire_pool.get());
    }
    let err: Mutex<Option<std::io::Error>> = Mutex::new(None);

    let (loop_stats, reader_stats, writer_stats) = std::thread::scope(|s| {
        // Each IO thread returns its stats plus any buffers it could not
        // route onward (rejected by a closed pipe on the abort path), so
        // every buffer makes it back to a pool no matter how the pass
        // ends.
        let prefetch = s.spawn(|| {
            let track = cfg.telemetry.track("ooc.prefetch");
            let mut reader = reader;
            let codec_on = !reader.codec().is_none();
            let mut stranded: Vec<Buf<R>> = Vec::new();
            for c in 0..n {
                let (buf, _) = chunk_free.pop();
                let Some(mut buf) = buf else { break };
                let d0 = reader.stats().decode_seconds;
                let read = {
                    let _s = track.span_timed("read", c as u64, "chunk_io_ns");
                    reader.read_into(c, &mut buf)
                };
                if codec_on {
                    let dt = reader.stats().decode_seconds - d0;
                    cfg.telemetry
                        .record_duration_ns("codec_decode_ns", (dt * 1e9) as u64);
                }
                if let Err(e) = read {
                    set_err(&err, e);
                    stranded.push(buf);
                    break;
                }
                if let (Some((_, buf)), _) = full.push((c, buf)) {
                    stranded.push(buf);
                    break;
                }
            }
            full.close();
            (reader.stats(), stranded)
        });

        let writeback = s.spawn(|| {
            let track = cfg.telemetry.track("ooc.writeback");
            let mut writer = writer;
            let codec_on = !writer.codec().is_none();
            let mut stranded: Vec<Buf<R>> = Vec::new();
            loop {
                let (item, _) = wb.pop();
                let e0 = writer.stats().encode_seconds;
                match item {
                    None => break,
                    Some(WbItem::Chunk { c, buf }) => {
                        // `usize::MAX` marks a recycle-only request.
                        if c != usize::MAX {
                            let _s = track.span_timed("write", c as u64, "chunk_io_ns");
                            if let Err(e) = writer.write_chunk_from(c, &buf) {
                                set_err(&err, e);
                            }
                        }
                        if let (Some(buf), _) = chunk_free.push(buf) {
                            stranded.push(buf);
                        }
                    }
                    Some(WbItem::Staged { c, off, buf }) => {
                        {
                            let _s = track.span_timed("write staged", c as u64, "chunk_io_ns");
                            if let Err(e) = writer.write_staged_range(c, off, &buf) {
                                set_err(&err, e);
                            }
                        }
                        if let (Some(buf), _) = wire_free.push(buf) {
                            stranded.push(buf);
                        }
                    }
                    Some(WbItem::StagedChunk { c, buf }) => {
                        {
                            let _s = track.span_timed("write staged", c as u64, "chunk_io_ns");
                            if let Err(e) = writer.write_staged_range(c, 0, &buf) {
                                set_err(&err, e);
                            }
                        }
                        if let (Some(buf), _) = chunk_free.push(buf) {
                            stranded.push(buf);
                        }
                    }
                }
                let dt = writer.stats().encode_seconds - e0;
                if codec_on && dt > 0.0 {
                    cfg.telemetry
                        .record_duration_ns("codec_encode_ns", (dt * 1e9) as u64);
                }
            }
            (writer.stats(), stranded)
        });

        let mut sink = PipeSink {
            wb: &wb,
            wire_free: &wire_free,
            io_wait: 0.0,
        };
        let mut compute_seconds = 0.0;
        for _ in 0..n {
            let (item, blocked) = full.pop();
            sink.io_wait += blocked;
            let Some((c, buf)) = item else { break };
            let wait0 = sink.io_wait;
            let t = Instant::now();
            let r = compute(c, buf, &mut sink);
            compute_seconds += t.elapsed().as_secs_f64() - (sink.io_wait - wait0);
            if let Err(e) = r {
                set_err(&err, e);
                break;
            }
        }
        // Orderly shutdown. Writeback drains its whole queue before
        // seeing the close and must be able to recycle every buffer, so
        // the free pipes stay open until it has joined. Closing `full`
        // here bounces an abandoned prefetch's in-flight push back to it
        // (on an early abort the main loop stops popping, so prefetch
        // could otherwise park on a pipe nobody drains).
        wb.close();
        full.close();
        let (writer_stats, wb_stranded) = writeback.join().unwrap_or_else(|p| {
            set_err(&err, thread_panic_err("writeback", p));
            (IoStats::default(), Vec::new())
        });
        chunk_free.close();
        wire_free.close();
        let (reader_stats, pf_stranded) = prefetch.join().unwrap_or_else(|p| {
            set_err(&err, thread_panic_err("prefetch", p));
            (IoStats::default(), Vec::new())
        });
        for b in pf_stranded {
            chunk_pool.put(b);
        }
        for b in wb_stranded {
            // Writeback strands buffers only after the free pipes close,
            // i.e. never under this ordering — but route them home
            // anyway (wire buffers are distinguishable by length).
            if b.len() == chunk_pool.buf_len() {
                chunk_pool.put(b);
            } else {
                wire_pool.put(b);
            }
        }
        let loop_stats = IoStats::compute_loop(sink.io_wait, compute_seconds);
        (loop_stats, reader_stats, writer_stats)
    });

    // Return every surviving buffer to its pool: the free-pipe seeds and,
    // after an abort, chunks stranded in `full`.
    let mut bufs = Vec::new();
    chunk_free.drain_into(&mut bufs);
    for b in bufs.drain(..) {
        chunk_pool.put(b);
    }
    wire_free.drain_into(&mut bufs);
    for b in bufs.drain(..) {
        wire_pool.put(b);
    }
    loop {
        let (item, _) = full.pop();
        match item {
            Some((_, b)) => chunk_pool.put(b),
            None => break,
        }
    }

    store.absorb(&reader_stats);
    store.absorb(&writer_stats);
    store.absorb(&loop_stats);
    store.count_traversal();
    match err.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkstore::ChunkStore;
    use crate::scratch::ScratchDir;
    use qsim_util::c64;

    #[test]
    fn pipe_is_fifo_and_bounded() {
        let p = Pipe::<u32>::new(2);
        assert_eq!(p.push(1), (None, 0.0));
        assert_eq!(p.push(2), (None, 0.0));
        assert_eq!(p.pop().0, Some(1));
        assert_eq!(p.pop().0, Some(2));
        p.close();
        assert_eq!(p.pop().0, None);
    }

    #[test]
    fn pipe_blocks_until_consumer_frees_capacity() {
        let p = std::sync::Arc::new(Pipe::<u32>::new(1));
        p.push(7);
        let q = p.clone();
        let h = std::thread::spawn(move || q.push(8)); // blocks
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(p.pop().0, Some(7));
        h.join().unwrap();
        assert_eq!(p.pop().0, Some(8));
    }

    #[test]
    fn pipe_drains_after_close() {
        let p = Pipe::<u32>::new(4);
        p.push(1);
        p.push(2);
        p.close();
        assert_eq!(p.pop().0, Some(1)); // queued items survive close
        assert_eq!(p.pop().0, Some(2));
        assert_eq!(p.pop().0, None);
        assert_eq!(p.push(3), (Some(3), 0.0)); // rejected back to caller
        assert_eq!(p.pop().0, None);
    }

    /// Both pass modes double every amplitude; results and pool
    /// accounting must agree.
    #[test]
    fn sync_and_pipelined_passes_agree() {
        for pipelined in [false, true] {
            let dir = ScratchDir::new(if pipelined { "pass_pipe" } else { "pass_sync" });
            let mut store = ChunkStore::create_filled(dir.path(), 4, 2, c64::one()).unwrap();
            let mut chunk_pool = BufferPool::new(store.chunk_len());
            let mut wire_pool = BufferPool::new(store.chunk_len() >> 2);
            chunk_pool.prewarm(3);
            let cfg = PassConfig {
                pipelined,
                depth: 2,
                wires: 0,
                telemetry: Telemetry::disabled(),
            };
            run_pass(
                &mut store,
                &mut chunk_pool,
                &mut wire_pool,
                &cfg,
                |c, mut buf, sink| {
                    for a in buf.iter_mut() {
                        *a *= c64::new(2.0, 0.0);
                    }
                    sink.write_chunk(c, buf)
                },
            )
            .unwrap();
            let v = store.to_vec().unwrap();
            assert!(v.iter().all(|&a| a == c64::new(2.0, 0.0)));
            assert_eq!(store.stats().traversals, 1);
            assert_eq!(chunk_pool.allocs(), 3, "no pool misses beyond prewarm");
            // All buffers came home.
            for _ in 0..3 {
                let b = chunk_pool.get();
                drop(b); // leak-free either way; allocs stays put
            }
            assert_eq!(chunk_pool.allocs(), 3);
        }
    }

    #[test]
    fn pipelined_staged_writes_commit() {
        let dir = ScratchDir::new("pass_staged");
        let mut store = ChunkStore::create_filled(dir.path(), 3, 1, c64::zero()).unwrap();
        let mut chunk_pool = BufferPool::new(store.chunk_len());
        let mut wire_pool = BufferPool::new(store.chunk_len() / 2);
        let piece = store.chunk_len() / 2;
        let cfg = PassConfig {
            pipelined: true,
            depth: 2,
            wires: 2,
            telemetry: Telemetry::disabled(),
        };
        // Transpose-like: piece `src` of staged chunk `dst` = src id.
        run_pass(
            &mut store,
            &mut chunk_pool,
            &mut wire_pool,
            &cfg,
            |src, buf, sink| {
                for dst in 0..2usize {
                    let mut wire = sink.take_wire()?;
                    for w in wire.iter_mut() {
                        *w = c64::new(src as f64 + 1.0, dst as f64);
                    }
                    sink.write_staged(dst, src * piece, wire)?;
                }
                sink.recycle_chunk(buf);
                Ok(())
            },
        )
        .unwrap();
        store.commit_staged().unwrap();
        let v = store.to_vec().unwrap();
        for dst in 0..2usize {
            for src in 0..2usize {
                let off = dst * store.chunk_len() + src * piece;
                assert!(v[off..off + piece]
                    .iter()
                    .all(|&a| a == c64::new(src as f64 + 1.0, dst as f64)));
            }
        }
    }

    #[test]
    fn pipelined_pass_surfaces_read_errors() {
        let dir = ScratchDir::new("pass_err");
        let mut store = ChunkStore::create_filled(dir.path(), 3, 2, c64::one()).unwrap();
        // Truncate one chunk so the prefetch read fails mid-pass.
        let bad = dir.path().join("chunk_000002.amps");
        std::fs::write(&bad, b"short").unwrap();
        let mut chunk_pool = BufferPool::new(store.chunk_len());
        let mut wire_pool = BufferPool::new(1);
        let cfg = PassConfig {
            pipelined: true,
            depth: 2,
            wires: 0,
            telemetry: Telemetry::disabled(),
        };
        let r = run_pass(
            &mut store,
            &mut chunk_pool,
            &mut wire_pool,
            &cfg,
            |c, buf, sink| sink.write_chunk(c, buf),
        );
        assert!(r.is_err(), "truncated chunk must fail the pass");
    }
}
