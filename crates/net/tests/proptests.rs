//! Property-based tests for the fabric: collectives must be data-
//! preserving permutations for arbitrary payloads, rank counts and group
//! shapes.

use proptest::prelude::*;
use qsim_net::collective::{all_reduce_sum, all_to_all, Communicator};
use qsim_net::fabric::{run_cluster, FabricStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_to_all_is_a_data_permutation(
        g in 1u32..=3,
        chunk_log in 0u32..=4,
        seed in 0u64..1000,
    ) {
        let ranks = 1usize << g;
        let chunk = 1usize << chunk_log;
        // Unique tagged payload values: (rank, index).
        let (results, _) = run_cluster(ranks, |ctx| {
            let send: Vec<u64> = (0..ranks * chunk)
                .map(|i| seed * 1_000_000 + (ctx.rank() * ranks * chunk + i) as u64)
                .collect();
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
        // Every sent value appears exactly once somewhere.
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..ranks)
            .flat_map(|r| (0..ranks * chunk).map(move |i| seed * 1_000_000 + (r * ranks * chunk + i) as u64))
            .collect();
        let mut expect = expect;
        expect.sort_unstable();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn group_all_to_all_never_crosses_groups(
        q in 1u32..=2,
        seed in 0u64..100,
    ) {
        let g = 3u32;
        let ranks = 1usize << g;
        let group = 1usize << q;
        let (results, _) = run_cluster(ranks, |ctx| {
            let comm = Communicator::group_of(ctx.rank(), group);
            let send: Vec<u64> = (0..group)
                .map(|j| seed + (ctx.rank() * 100 + j) as u64)
                .collect();
            (ctx.rank(), all_to_all(ctx, comm, &send))
        });
        for (rank, recv) in results {
            let base = rank & !(group - 1);
            for (i, &v) in recv.iter().enumerate() {
                let src = base + i;
                let j = rank - base;
                prop_assert_eq!(v, seed + (src * 100 + j) as u64);
            }
        }
    }

    #[test]
    fn all_reduce_sums_exactly(values in prop::collection::vec(-100.0f64..100.0, 4)) {
        let vals = values.clone();
        let (results, _) = run_cluster(4, move |ctx| {
            all_reduce_sum(ctx, vals[ctx.rank()])
        });
        let expect: f64 = values.iter().sum();
        for r in results {
            prop_assert!((r - expect).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `FabricStats::overlap_fraction` is a derived ratio and must stay
    /// in [0, 1] for arbitrary non-negative counters — including blocked
    /// time exceeding total comm time (per-rank clock granularity) and
    /// the no-communication degenerate case.
    #[test]
    fn fabric_stats_overlap_fraction_bounded(
        n_ranks in 0usize..=1024,
        total_bytes_sent in 0u64..=1u64 << 50,
        max_comm in 0.0f64..1e9,
        mean_comm in 0.0f64..1e9,
        max_blocked in 0.0f64..2e9,
        mean_blocked in 0.0f64..2e9,
        wire_allocs in 0u64..=1u64 << 40,
    ) {
        let stats = FabricStats {
            n_ranks,
            total_bytes_sent,
            max_comm_seconds: max_comm,
            mean_comm_seconds: mean_comm,
            max_blocked_seconds: max_blocked,
            mean_blocked_seconds: mean_blocked,
            wire_allocs,
        };
        let f = stats.overlap_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "overlap_fraction {} out of [0, 1]", f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same bound on stats measured from a real message workload.
    #[test]
    fn fabric_workload_overlap_fraction_bounded(
        g in 1u32..=3,
        payload_log in 0u32..=12,
        rounds in 1usize..=4,
    ) {
        let ranks = 1usize << g;
        let (_, stats) = run_cluster(ranks, move |ctx| {
            let partner = ctx.rank() ^ 1;
            let payload = vec![0u8; 1usize << payload_log];
            for _ in 0..rounds {
                ctx.exchange(partner, &payload);
            }
        });
        let f = stats.overlap_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "overlap_fraction {} out of [0, 1]", f);
    }
}
