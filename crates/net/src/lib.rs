//! # qsim-net
//!
//! The multi-node substrate (§3.4) — an in-process message-passing fabric
//! standing in for MPI. Ranks are OS threads, each owning a private slice
//! of the distributed state vector; communication is real data movement
//! through shared-memory mailboxes with full byte accounting, so the
//! traffic numbers the paper reports (Fig. 5, Table 2's comm column) are
//! measured, not modelled.
//!
//! * [`fabric`] — rank spawning, ordered point-to-point channels,
//!   barriers, per-rank byte/time counters.
//! * [`collective`] — the collectives the simulator uses: all-to-all over
//!   the world or over contiguous groups (the group-local all-to-alls of a
//!   partial global-to-local swap, Fig. 3), pairwise half-state exchange
//!   (the scheme of \[19\], used by the baseline simulator), and all-reduce
//!   (entropy/norm reductions, §4.2.2).
//! * [`model`] — a dragonfly-style analytic network model for projecting
//!   measured byte volumes to petascale machines (the paper's 45-qubit /
//!   8192-node regime that no single host can execute).
//! * [`error`] / [`fault`] — the typed failure surface ([`SimError`]) and
//!   scripted fault injection ([`FaultPlan`]): a killed or panicking rank
//!   poisons the fabric, peers unblock instead of hanging, and
//!   [`fabric::try_run_cluster`] reports the root cause.

pub mod collective;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod model;

pub use error::SimError;
pub use fabric::{
    run_cluster, try_run_cluster, try_run_cluster_hooked, try_run_cluster_with, CommCounters,
    FabricStats, PoisonHook, RankCtx,
};
pub use fault::{FaultAction, FaultPlan};
pub use model::NetModel;
