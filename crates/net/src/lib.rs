//! # qsim-net
//!
//! The multi-node substrate (§3.4) — an in-process message-passing fabric
//! standing in for MPI. Ranks are OS threads, each owning a private slice
//! of the distributed state vector; communication is real data movement
//! through shared-memory mailboxes with full byte accounting, so the
//! traffic numbers the paper reports (Fig. 5, Table 2's comm column) are
//! measured, not modelled.
//!
//! * [`fabric`] — rank spawning, ordered point-to-point channels,
//!   barriers, per-rank byte/time counters.
//! * [`collective`] — the collectives the simulator uses: all-to-all over
//!   the world or over contiguous groups (the group-local all-to-alls of a
//!   partial global-to-local swap, Fig. 3), pairwise half-state exchange
//!   (the scheme of \[19\], used by the baseline simulator), and all-reduce
//!   (entropy/norm reductions, §4.2.2).
//! * [`model`] — a dragonfly-style analytic network model for projecting
//!   measured byte volumes to petascale machines (the paper's 45-qubit /
//!   8192-node regime that no single host can execute).

pub mod collective;
pub mod fabric;
pub mod model;

pub use fabric::{run_cluster, CommCounters, FabricStats, RankCtx};
pub use model::NetModel;
