//! Typed failure surface of the rank fabric.
//!
//! Before this module, a lost rank was fatal twice over: the dead rank's
//! panic unwound its own thread, every peer blocked forever in a recv or
//! barrier, and the driver's `join().expect` turned the whole process
//! into a poisoned hang. [`SimError`] plus the fabric's poison protocol
//! (see `fabric`) replace that with one typed, attributable error: the
//! *first* failing rank's cause survives, peers are woken and classified
//! as collateral ([`SimError::FabricPoisoned`]), and the driver returns
//! `Err` instead of panicking.

use std::fmt;

/// Why a clustered run failed.
#[derive(Debug)]
pub enum SimError {
    /// A configured [`crate::FaultPlan`] killed this rank at the given
    /// swap boundary (fault-injection testing).
    InjectedFault { rank: usize, swap_index: usize },
    /// An engine-level stop point halted a run after `unit` completed
    /// checkpoint units (single-process fault injection, where there is
    /// no fabric to kill a rank through).
    InjectedStop { unit: usize },
    /// The rank body panicked; `message` is the panic payload when it
    /// was a string.
    RankPanicked { rank: usize, message: String },
    /// This rank failed only because *another* rank poisoned the fabric
    /// — collateral damage, never the root cause reported by
    /// `try_run_cluster` when any other error is available.
    FabricPoisoned { rank: usize },
    /// Checkpoint/restart bookkeeping failed (manifest or snapshot).
    Checkpoint(String),
    /// Filesystem failure outside the checkpoint protocol.
    Io(std::io::Error),
}

impl SimError {
    /// The rank this error is attributed to, when known.
    pub fn rank(&self) -> Option<usize> {
        match self {
            SimError::InjectedFault { rank, .. }
            | SimError::RankPanicked { rank, .. }
            | SimError::FabricPoisoned { rank } => Some(*rank),
            SimError::InjectedStop { .. } | SimError::Checkpoint(_) | SimError::Io(_) => None,
        }
    }

    /// Ordering key for root-cause selection: direct failures beat
    /// panics, panics beat collateral poisoning.
    pub(crate) fn severity(&self) -> u8 {
        match self {
            SimError::FabricPoisoned { .. } => 2,
            SimError::RankPanicked { .. } => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InjectedFault { rank, swap_index } => {
                write!(f, "rank {rank} killed by fault plan at swap {swap_index}")
            }
            SimError::InjectedStop { unit } => {
                write!(f, "run stopped by injected fault after unit {unit}")
            }
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::FabricPoisoned { rank } => {
                write!(f, "rank {rank} aborted: fabric poisoned by a failed peer")
            }
            SimError::Checkpoint(m) => write!(f, "checkpoint failure: {m}"),
            SimError::Io(e) => write!(f, "io failure: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e)
    }
}
