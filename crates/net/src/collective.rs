//! Collectives (§3.4).
//!
//! The global-to-local swap is "1 group-local all-to-all for each of the
//! 2^{g−q} groups of processes", and "turning all global qubits into local
//! ones amounts to executing one all-to-all on the MPI_COMM_WORLD
//! communicator". [`Communicator`] models the contiguous process groups;
//! [`all_to_all`] is the workhorse. [`exchange_halves`] is the pairwise
//! scheme of \[19\] used by the baseline simulator, and [`all_reduce_sum`]
//! backs the entropy/norm reductions (§4.2.2).

use crate::fabric::RankCtx;

/// A contiguous group of ranks `[base, base + size)` — the process groups
/// of a q-qubit group-local swap share their high global bits, which makes
/// them contiguous in rank numbering.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Communicator {
    pub base: usize,
    pub size: usize,
}

impl Communicator {
    /// The world communicator.
    pub fn world(ctx: &RankCtx) -> Self {
        Self {
            base: 0,
            size: ctx.n_ranks(),
        }
    }

    /// The group of `2^q` ranks containing `rank` for a q-qubit
    /// group-local swap (ranks sharing the high `g − q` bits).
    pub fn group_of(rank: usize, group_size: usize) -> Self {
        assert!(group_size.is_power_of_two(), "group size must be 2^q");
        Self {
            base: rank & !(group_size - 1),
            size: group_size,
        }
    }

    #[inline]
    pub fn contains(&self, rank: usize) -> bool {
        rank >= self.base && rank < self.base + self.size
    }

    /// Rank's index within the group.
    #[inline]
    pub fn local_index(&self, rank: usize) -> usize {
        debug_assert!(self.contains(rank));
        rank - self.base
    }
}

/// All-to-all over `comm`: `send` is split into `comm.size` equal chunks;
/// chunk `j` goes to group member `j`; the returned vector holds the
/// received chunks in group order (chunk `i` came from member `i`).
/// The self-chunk is copied locally and not counted as traffic.
pub fn all_to_all<T: Copy>(ctx: &mut RankCtx, comm: Communicator, send: &[T]) -> Vec<T> {
    let p = comm.size;
    assert!(p >= 1, "empty communicator");
    assert!(comm.contains(ctx.rank()), "rank outside communicator");
    assert_eq!(send.len() % p, 0, "payload not divisible into {p} chunks");
    let chunk = send.len() / p;
    let me = comm.local_index(ctx.rank());
    // Post all sends first (mailboxes buffer), then receive in order.
    for j in 0..p {
        if j == me {
            continue;
        }
        ctx.send_slice(comm.base + j, &send[j * chunk..(j + 1) * chunk]);
    }
    let mut out = vec![send[0]; send.len()];
    out[me * chunk..(me + 1) * chunk].copy_from_slice(&send[me * chunk..(me + 1) * chunk]);
    for i in 0..p {
        if i == me {
            continue;
        }
        let data: Vec<T> = ctx.recv_vec(comm.base + i);
        assert_eq!(data.len(), chunk, "chunk size mismatch from {i}");
        out[i * chunk..(i + 1) * chunk].copy_from_slice(&data);
    }
    out
}

/// The pairwise exchange of the first multi-node scheme (\[19\]): send one
/// half of the local slice to the partner (the rank differing in one
/// global bit), receive the partner's corresponding half. Used twice per
/// global gate by the baseline simulator — hence "2 pair-wise exchanges of
/// half the state vector".
pub fn exchange_halves<T: Copy>(ctx: &mut RankCtx, partner: usize, half: &[T]) -> Vec<T> {
    ctx.exchange(partner, half)
}

/// Sum-all-reduce of one f64 (recursive doubling).
pub fn all_reduce_sum(ctx: &mut RankCtx, value: f64) -> f64 {
    let p = ctx.n_ranks();
    debug_assert!(p.is_power_of_two());
    let mut acc = value;
    let mut stride = 1usize;
    while stride < p {
        let partner = ctx.rank() ^ stride;
        let got = ctx.exchange(partner, &[acc]);
        acc += got[0];
        stride <<= 1;
    }
    acc
}

/// Max-all-reduce of one f64 (recursive doubling).
pub fn all_reduce_max(ctx: &mut RankCtx, value: f64) -> f64 {
    let p = ctx.n_ranks();
    let mut acc = value;
    let mut stride = 1usize;
    while stride < p {
        let partner = ctx.rank() ^ stride;
        let got = ctx.exchange(partner, &[acc]);
        acc = acc.max(got[0]);
        stride <<= 1;
    }
    acc
}

/// Gather per-rank f64 values to every rank (small payloads only).
pub fn all_gather_f64(ctx: &mut RankCtx, value: f64) -> Vec<f64> {
    let p = ctx.n_ranks();
    let mut out = vec![0.0; p];
    out[ctx.rank()] = value;
    for peer in 0..p {
        if peer == ctx.rank() {
            continue;
        }
        ctx.send_slice(peer, &[value]);
    }
    for peer in 0..p {
        if peer == ctx.rank() {
            continue;
        }
        let v: Vec<f64> = ctx.recv_vec(peer);
        out[peer] = v[0];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_cluster;
    use qsim_util::c64;

    #[test]
    fn world_all_to_all_transposes_chunks() {
        // Rank r sends chunk j = value r*10 + j; after the all-to-all,
        // rank r holds chunk i = i*10 + r.
        let (results, stats) = run_cluster(4, |ctx| {
            let send: Vec<u64> = (0..4).map(|j| (ctx.rank() * 10 + j) as u64).collect();
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
        for (r, recv) in results.iter().enumerate() {
            for (i, &v) in recv.iter().enumerate() {
                assert_eq!(v, (i * 10 + r) as u64, "rank {r} chunk {i}");
            }
        }
        // Each rank sends 3 chunks of 8 bytes.
        assert_eq!(stats.total_bytes_sent, 4 * 3 * 8);
    }

    #[test]
    fn group_local_all_to_all_stays_in_group() {
        // 8 ranks, groups of 4: data must never cross the group boundary.
        let (results, _) = run_cluster(8, |ctx| {
            let comm = Communicator::group_of(ctx.rank(), 4);
            let send: Vec<u64> = (0..4).map(|j| (ctx.rank() * 10 + j) as u64).collect();
            (comm.base, all_to_all(ctx, comm, &send))
        });
        for (r, (base, recv)) in results.iter().enumerate() {
            assert_eq!(*base, r & !3);
            for (i, &v) in recv.iter().enumerate() {
                let src = base + i;
                assert_eq!(v, (src * 10 + (r - base)) as u64);
            }
        }
    }

    #[test]
    fn all_to_all_single_rank_is_identity() {
        let (results, stats) = run_cluster(1, |ctx| {
            let send = vec![c64::new(1.0, 2.0), c64::new(3.0, 4.0)];
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
        assert_eq!(results[0], vec![c64::new(1.0, 2.0), c64::new(3.0, 4.0)]);
        assert_eq!(stats.total_bytes_sent, 0, "self-chunk is not traffic");
    }

    #[test]
    fn all_to_all_is_involution_for_symmetric_layout() {
        // Applying the all-to-all twice restores the original data.
        let (results, _) = run_cluster(4, |ctx| {
            let send: Vec<u64> = (0..8).map(|j| (ctx.rank() * 100 + j) as u64).collect();
            let once = all_to_all(ctx, Communicator::world(ctx), &send);
            let twice = all_to_all(ctx, Communicator::world(ctx), &once);
            (send, twice)
        });
        for (send, twice) in results {
            assert_eq!(send, twice);
        }
    }

    #[test]
    fn reduce_and_gather() {
        let (results, _) = run_cluster(8, |ctx| {
            let sum = all_reduce_sum(ctx, ctx.rank() as f64);
            let max = all_reduce_max(ctx, ctx.rank() as f64);
            let gathered = all_gather_f64(ctx, ctx.rank() as f64 * 2.0);
            (sum, max, gathered)
        });
        for (sum, max, gathered) in results {
            assert_eq!(sum, 28.0);
            assert_eq!(max, 7.0);
            assert_eq!(gathered, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
        }
    }

    #[test]
    fn exchange_halves_swaps_data() {
        let (results, stats) = run_cluster(2, |ctx| {
            let partner = ctx.rank() ^ 1;
            let mine = vec![c64::new(ctx.rank() as f64, 0.0); 16];
            exchange_halves(ctx, partner, &mine)
        });
        assert!(results[0].iter().all(|&a| a.re == 1.0));
        assert!(results[1].iter().all(|&a| a.re == 0.0));
        // 2 ranks x 16 amps x 16 bytes.
        assert_eq!(stats.total_bytes_sent, 512);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn all_to_all_rejects_ragged_payload() {
        let _ = run_cluster(4, |ctx| {
            let send = vec![0u64; 5];
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
    }
}
