//! Collectives (§3.4).
//!
//! The global-to-local swap is "1 group-local all-to-all for each of the
//! 2^{g−q} groups of processes", and "turning all global qubits into local
//! ones amounts to executing one all-to-all on the MPI_COMM_WORLD
//! communicator". [`Communicator`] models the contiguous process groups.
//!
//! The workhorse is the pipelined engine [`all_to_all_with`]: each peer
//! segment is split into `sub_chunks` rounds; every round posts all sends
//! (packing straight into pooled wire buffers) before draining the
//! matching receives (unpacking straight out of them), so payload work
//! overlaps with other ranks' progress and nothing is buffered twice.
//! [`all_to_all_into`] / [`all_to_all_inplace`] are the borrowed,
//! allocation-free entry points; [`all_to_all`] keeps the classic
//! allocate-and-return signature on top. [`exchange_halves`] is the
//! pairwise scheme of \[19\] used by the baseline simulator, and
//! [`all_reduce_sum`] backs the entropy/norm reductions (§4.2.2).

use crate::fabric::RankCtx;
use std::ops::Range;

/// A contiguous group of ranks `[base, base + size)` — the process groups
/// of a q-qubit group-local swap share their high global bits, which makes
/// them contiguous in rank numbering.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Communicator {
    pub base: usize,
    pub size: usize,
}

impl Communicator {
    /// The world communicator.
    pub fn world(ctx: &RankCtx) -> Self {
        Self {
            base: 0,
            size: ctx.n_ranks(),
        }
    }

    /// The group of `2^q` ranks containing `rank` for a q-qubit
    /// group-local swap (ranks sharing the high `g − q` bits).
    pub fn group_of(rank: usize, group_size: usize) -> Self {
        assert!(group_size.is_power_of_two(), "group size must be 2^q");
        Self {
            base: rank & !(group_size - 1),
            size: group_size,
        }
    }

    #[inline]
    pub fn contains(&self, rank: usize) -> bool {
        rank >= self.base && rank < self.base + self.size
    }

    /// Rank's index within the group.
    #[inline]
    pub fn local_index(&self, rank: usize) -> usize {
        debug_assert!(self.contains(rank));
        rank - self.base
    }
}

/// The offset range of pipeline round `round` when a `seg_len`-element
/// segment is split into `sub_chunks` rounds (earlier rounds absorb the
/// remainder, so rounds differ in length by at most one element).
pub fn sub_range(seg_len: usize, sub_chunks: usize, round: usize) -> Range<usize> {
    debug_assert!(round < sub_chunks);
    let base = seg_len / sub_chunks;
    let rem = seg_len % sub_chunks;
    let start = round * base + round.min(rem);
    start..start + base + usize::from(round < rem)
}

/// Pipelined all-to-all engine: every rank owns `comm.size` segments of
/// `seg_len` elements; segment `j` is produced for group member `j` by
/// `pack` and the segment received from member `i` is consumed by
/// `unpack`, sub-chunk by sub-chunk. The self segment (`j == me`) is never
/// packed, sent, or unpacked — callers for whom it is not a no-op must
/// handle it themselves (for the swap data path it is an exact identity).
///
/// `data` is threaded mutably through both closures so a caller can pack
/// from and unpack into the *same* storage: within a round all packs
/// (reads) complete before any unpack (write), and distinct rounds touch
/// disjoint sub-ranges of each segment, so an injective index mapping
/// makes the in-place exchange safe.
///
/// Deadlock-free for any `sub_chunks >= 1`: sends are non-blocking
/// (mailboxes buffer), and every rank posts all round-`s` sends before
/// blocking on its first round-`s` receive.
pub fn all_to_all_with<T: Copy, D: ?Sized>(
    ctx: &mut RankCtx,
    comm: Communicator,
    seg_len: usize,
    sub_chunks: usize,
    data: &mut D,
    mut pack: impl FnMut(&mut D, usize, Range<usize>, &mut [T]),
    mut unpack: impl FnMut(&mut D, usize, Range<usize>, &[T]),
) {
    let p = comm.size;
    assert!(p >= 1, "empty communicator");
    assert!(comm.contains(ctx.rank()), "rank outside communicator");
    let me = comm.local_index(ctx.rank());
    if p == 1 || seg_len == 0 {
        return;
    }
    let s = sub_chunks.clamp(1, seg_len);
    for round in 0..s {
        let r = sub_range(seg_len, s, round);
        for j in 0..p {
            if j == me {
                continue;
            }
            ctx.send_with::<T>(comm.base + j, r.len(), |wire| {
                pack(data, j, r.clone(), wire)
            });
        }
        for i in 0..p {
            if i == me {
                continue;
            }
            ctx.recv_with::<T, ()>(comm.base + i, |wire| {
                assert_eq!(wire.len(), r.len(), "sub-chunk size mismatch from {i}");
                unpack(data, i, r.clone(), wire);
            });
        }
    }
}

/// All-to-all into caller-provided storage: `send` is split into
/// `comm.size` equal segments, segment `j` goes to group member `j`, and
/// `out` receives the segments in group order — with zero allocations in
/// steady state and `sub_chunks`-deep pipelining. `send` and `out` must
/// not alias (use [`all_to_all_inplace`] for the aliased case).
pub fn all_to_all_into<T: Copy>(
    ctx: &mut RankCtx,
    comm: Communicator,
    send: &[T],
    out: &mut [T],
    sub_chunks: usize,
) {
    let p = comm.size;
    assert_eq!(send.len() % p, 0, "payload not divisible into {p} chunks");
    assert_eq!(out.len(), send.len(), "output length mismatch");
    let seg = send.len() / p;
    let me = comm.local_index(ctx.rank());
    out[me * seg..(me + 1) * seg].copy_from_slice(&send[me * seg..(me + 1) * seg]);
    all_to_all_with::<T, [T]>(
        ctx,
        comm,
        seg,
        sub_chunks,
        out,
        |_, j, r, wire| wire.copy_from_slice(&send[j * seg + r.start..j * seg + r.end]),
        |out, i, r, wire| out[i * seg + r.start..i * seg + r.end].copy_from_slice(wire),
    );
}

/// All-to-all exchanging the segments of `buf` in place (the partial-swap
/// data path: segment contents swap between ranks without local
/// reordering, and the self segment stays put untouched).
pub fn all_to_all_inplace<T: Copy>(
    ctx: &mut RankCtx,
    comm: Communicator,
    buf: &mut [T],
    sub_chunks: usize,
) {
    let p = comm.size;
    assert_eq!(buf.len() % p, 0, "payload not divisible into {p} chunks");
    let seg = buf.len() / p;
    all_to_all_with::<T, [T]>(
        ctx,
        comm,
        seg,
        sub_chunks,
        buf,
        |buf, j, r, wire| wire.copy_from_slice(&buf[j * seg + r.start..j * seg + r.end]),
        |buf, i, r, wire| buf[i * seg + r.start..i * seg + r.end].copy_from_slice(wire),
    );
}

/// All-to-all over `comm` with the classic allocate-and-return signature;
/// see [`all_to_all_into`] for the allocation-free variant. An empty
/// payload is a no-op returning an empty vector.
pub fn all_to_all<T: Copy>(ctx: &mut RankCtx, comm: Communicator, send: &[T]) -> Vec<T> {
    let mut out = send.to_vec();
    all_to_all_inplace(ctx, comm, &mut out, 1);
    out
}

/// The pairwise exchange of the first multi-node scheme (\[19\]): send one
/// half of the local slice to the partner (the rank differing in one
/// global bit), receive the partner's corresponding half. Used twice per
/// global gate by the baseline simulator — hence "2 pair-wise exchanges of
/// half the state vector".
pub fn exchange_halves<T: Copy>(ctx: &mut RankCtx, partner: usize, half: &[T]) -> Vec<T> {
    ctx.exchange(partner, half)
}

/// Sum-all-reduce of one f64 (recursive doubling).
pub fn all_reduce_sum(ctx: &mut RankCtx, value: f64) -> f64 {
    let p = ctx.n_ranks();
    debug_assert!(p.is_power_of_two());
    let mut acc = value;
    let mut stride = 1usize;
    while stride < p {
        let partner = ctx.rank() ^ stride;
        let got = ctx.exchange(partner, &[acc]);
        acc += got[0];
        stride <<= 1;
    }
    acc
}

/// Max-all-reduce of one f64 (recursive doubling).
pub fn all_reduce_max(ctx: &mut RankCtx, value: f64) -> f64 {
    let p = ctx.n_ranks();
    let mut acc = value;
    let mut stride = 1usize;
    while stride < p {
        let partner = ctx.rank() ^ stride;
        let got = ctx.exchange(partner, &[acc]);
        acc = acc.max(got[0]);
        stride <<= 1;
    }
    acc
}

/// Gather per-rank f64 values to every rank (small payloads only).
pub fn all_gather_f64(ctx: &mut RankCtx, value: f64) -> Vec<f64> {
    let p = ctx.n_ranks();
    let mut out = vec![0.0; p];
    out[ctx.rank()] = value;
    for peer in 0..p {
        if peer == ctx.rank() {
            continue;
        }
        ctx.send_slice(peer, &[value]);
    }
    let me = ctx.rank();
    for (peer, slot) in out.iter_mut().enumerate() {
        if peer == me {
            continue;
        }
        let mut got = 0.0;
        ctx.recv_into(peer, core::slice::from_mut(&mut got));
        *slot = got;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_cluster;
    use qsim_util::c64;

    #[test]
    fn world_all_to_all_transposes_chunks() {
        // Rank r sends chunk j = value r*10 + j; after the all-to-all,
        // rank r holds chunk i = i*10 + r.
        let (results, stats) = run_cluster(4, |ctx| {
            let send: Vec<u64> = (0..4).map(|j| (ctx.rank() * 10 + j) as u64).collect();
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
        for (r, recv) in results.iter().enumerate() {
            for (i, &v) in recv.iter().enumerate() {
                assert_eq!(v, (i * 10 + r) as u64, "rank {r} chunk {i}");
            }
        }
        // Each rank sends 3 chunks of 8 bytes.
        assert_eq!(stats.total_bytes_sent, 4 * 3 * 8);
    }

    #[test]
    fn group_local_all_to_all_stays_in_group() {
        // 8 ranks, groups of 4: data must never cross the group boundary.
        let (results, _) = run_cluster(8, |ctx| {
            let comm = Communicator::group_of(ctx.rank(), 4);
            let send: Vec<u64> = (0..4).map(|j| (ctx.rank() * 10 + j) as u64).collect();
            (comm.base, all_to_all(ctx, comm, &send))
        });
        for (r, (base, recv)) in results.iter().enumerate() {
            assert_eq!(*base, r & !3);
            for (i, &v) in recv.iter().enumerate() {
                let src = base + i;
                assert_eq!(v, (src * 10 + (r - base)) as u64);
            }
        }
    }

    #[test]
    fn all_to_all_single_rank_is_identity() {
        let (results, stats) = run_cluster(1, |ctx| {
            let send = vec![c64::new(1.0, 2.0), c64::new(3.0, 4.0)];
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
        assert_eq!(results[0], vec![c64::new(1.0, 2.0), c64::new(3.0, 4.0)]);
        assert_eq!(stats.total_bytes_sent, 0, "self-chunk is not traffic");
    }

    #[test]
    fn all_to_all_empty_payload_is_noop() {
        // Regression: the previous implementation indexed send[0] to size
        // its output and panicked on an empty payload.
        let (results, stats) = run_cluster(4, |ctx| {
            let send: Vec<u64> = Vec::new();
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
        assert!(results.iter().all(|v| v.is_empty()));
        assert_eq!(stats.total_bytes_sent, 0);
    }

    #[test]
    fn all_to_all_is_involution_for_symmetric_layout() {
        // Applying the all-to-all twice restores the original data.
        let (results, _) = run_cluster(4, |ctx| {
            let send: Vec<u64> = (0..8).map(|j| (ctx.rank() * 100 + j) as u64).collect();
            let once = all_to_all(ctx, Communicator::world(ctx), &send);
            let twice = all_to_all(ctx, Communicator::world(ctx), &once);
            (send, twice)
        });
        for (send, twice) in results {
            assert_eq!(send, twice);
        }
    }

    #[test]
    fn all_to_all_into_matches_all_to_all_at_any_depth() {
        // The pipelined borrowed path must equal the classic collective
        // regardless of sub-chunk depth (including depths exceeding the
        // segment, which clamp).
        for sub_chunks in [1usize, 2, 3, 5, 100] {
            let (results, stats) = run_cluster(4, |ctx| {
                let send: Vec<u64> = (0..24).map(|j| (ctx.rank() * 100 + j) as u64).collect();
                let expect = all_to_all(ctx, Communicator::world(ctx), &send);
                let mut out = vec![0u64; send.len()];
                all_to_all_into(ctx, Communicator::world(ctx), &send, &mut out, sub_chunks);
                (expect, out)
            });
            for (expect, out) in results {
                assert_eq!(expect, out, "sub_chunks={sub_chunks}");
            }
            // Sub-chunking splits messages but never changes byte totals:
            // two all-to-alls of 4 ranks x 3 peers x 6 elements x 8 bytes.
            assert_eq!(stats.total_bytes_sent, 2 * 4 * 3 * 6 * 8);
        }
    }

    #[test]
    fn all_to_all_inplace_matches_out_of_place() {
        let (results, _) = run_cluster(8, |ctx| {
            let comm = Communicator::group_of(ctx.rank(), 4);
            let send: Vec<u64> = (0..16).map(|j| (ctx.rank() * 100 + j) as u64).collect();
            let expect = all_to_all(ctx, comm, &send);
            let mut buf = send.clone();
            all_to_all_inplace(ctx, comm, &mut buf, 3);
            (expect, buf)
        });
        for (expect, buf) in results {
            assert_eq!(expect, buf);
        }
    }

    #[test]
    fn sub_ranges_partition_segment() {
        for (seg, s) in [(10usize, 3usize), (7, 7), (16, 1), (5, 4), (12, 5)] {
            let mut covered = 0usize;
            for round in 0..s {
                let r = sub_range(seg, s, round);
                assert_eq!(r.start, covered, "rounds must be contiguous");
                covered = r.end;
                assert!(r.len() >= seg / s && r.len() <= seg.div_ceil(s));
            }
            assert_eq!(covered, seg, "rounds must cover the segment");
        }
    }

    #[test]
    fn reduce_and_gather() {
        let (results, _) = run_cluster(8, |ctx| {
            let sum = all_reduce_sum(ctx, ctx.rank() as f64);
            let max = all_reduce_max(ctx, ctx.rank() as f64);
            let gathered = all_gather_f64(ctx, ctx.rank() as f64 * 2.0);
            (sum, max, gathered)
        });
        for (sum, max, gathered) in results {
            assert_eq!(sum, 28.0);
            assert_eq!(max, 7.0);
            assert_eq!(gathered, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
        }
    }

    #[test]
    fn exchange_halves_swaps_data() {
        let (results, stats) = run_cluster(2, |ctx| {
            let partner = ctx.rank() ^ 1;
            let mine = vec![c64::new(ctx.rank() as f64, 0.0); 16];
            exchange_halves(ctx, partner, &mine)
        });
        assert!(results[0].iter().all(|&a| a.re == 1.0));
        assert!(results[1].iter().all(|&a| a.re == 0.0));
        // 2 ranks x 16 amps x 16 bytes.
        assert_eq!(stats.total_bytes_sent, 512);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn all_to_all_rejects_ragged_payload() {
        let _ = run_cluster(4, |ctx| {
            let send = vec![0u64; 5];
            all_to_all(ctx, Communicator::world(ctx), &send)
        });
    }
}
