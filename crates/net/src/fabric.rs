//! Rank fabric: threads, ordered point-to-point messaging, barriers, and
//! communication accounting.
//!
//! Channel semantics mirror MPI's per-pair ordering: messages from rank A
//! to rank B are matched in send order (each side keeps sequence
//! counters), so collectives built on top are deterministic without
//! explicit tags. Payloads are pooled [`WireBuf`]s (8-byte-aligned byte
//! buffers): a sender packs directly into a recycled buffer via
//! [`RankCtx::send_with`], the receiver unpacks straight out of it via
//! [`RankCtx::recv_with`] / [`RankCtx::recv_into`], and the buffer is
//! returned to the *sender's* pool on consumption — so a steady-state
//! communication pattern (e.g. the global-swap all-to-alls, which repeat
//! the same message sizes every swap) performs zero heap allocations
//! after warm-up. Pool misses are counted in [`FabricStats::wire_allocs`].

use crate::error::SimError;
use crate::fault::{FaultAction, FaultPlan};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// An 8-byte-aligned, recyclable message payload.
///
/// Backed by `Vec<u64>` so any `Copy` element type with alignment ≤ 8
/// (bytes, f64, complex amplitudes) can be viewed in place without copies
/// on either side of the wire.
pub struct WireBuf {
    words: Vec<u64>,
    bytes: usize,
}

impl WireBuf {
    fn with_byte_len(bytes: usize) -> Self {
        Self {
            words: vec![0u64; bytes.div_ceil(8)],
            bytes,
        }
    }

    /// Usable capacity in bytes (allocation-free up to this size).
    #[inline]
    fn capacity_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Set the logical length, growing the backing store if needed.
    /// Returns true when a (re)allocation was required.
    fn set_byte_len(&mut self, bytes: usize) -> bool {
        let grew = bytes > self.capacity_bytes();
        if grew {
            self.words.resize(bytes.div_ceil(8), 0);
        }
        self.bytes = bytes;
        grew
    }

    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.bytes
    }

    /// View the payload as a typed slice. `T` must be `Copy` with
    /// alignment ≤ 8 and must divide the payload size exactly.
    #[inline]
    pub fn as_slice<T: Copy>(&self) -> &[T] {
        let sz = check_layout::<T>(self.bytes);
        // SAFETY: the u64 backing guarantees alignment >= 8 >= align_of::<T>(),
        // the buffer is fully initialized (zeroed or written), and T is Copy.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const T, self.bytes / sz) }
    }

    /// Mutable typed view (for packing directly into the wire).
    #[inline]
    pub fn as_mut_slice<T: Copy>(&mut self) -> &mut [T] {
        let sz = check_layout::<T>(self.bytes);
        // SAFETY: as for `as_slice`; the &mut receiver guarantees uniqueness.
        unsafe {
            std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut T, self.bytes / sz)
        }
    }
}

#[inline]
fn check_layout<T: Copy>(bytes: usize) -> usize {
    let sz = std::mem::size_of::<T>();
    assert!(
        sz > 0 && std::mem::align_of::<T>() <= 8,
        "wire element must be sized with alignment <= 8"
    );
    assert!(bytes.is_multiple_of(sz), "payload size mismatch");
    sz
}

/// Per-rank communication counters (bytes actually put on the "wire";
/// self-copies in collectives are not counted, matching MPI accounting).
#[derive(Debug, Default)]
pub struct CommCounters {
    pub bytes_sent: AtomicU64,
    /// Nanoseconds spent inside communication calls (send/recv/barrier),
    /// including time spent packing/unpacking payloads — the swap data
    /// path's total.
    pub comm_nanos: AtomicU64,
    /// Nanoseconds spent *blocked* (condvar waits for a missing message,
    /// barrier waits). `comm_nanos − blocked_nanos` is comm-call time that
    /// did useful work and therefore overlapped with the data path.
    pub blocked_nanos: AtomicU64,
    /// Wire-buffer pool misses (a fresh allocation or a grow was needed).
    pub wire_allocs: AtomicU64,
}

/// Aggregated statistics returned by [`run_cluster`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FabricStats {
    pub n_ranks: usize,
    pub total_bytes_sent: u64,
    /// Max over ranks of time spent in communication, in seconds — the
    /// number behind Table 2's "Comm." column.
    pub max_comm_seconds: f64,
    /// Mean over ranks of communication seconds.
    pub mean_comm_seconds: f64,
    /// Max over ranks of time spent *blocked* waiting (not packing or
    /// unpacking), in seconds.
    pub max_blocked_seconds: f64,
    /// Mean over ranks of blocked seconds.
    pub mean_blocked_seconds: f64,
    /// Total wire-buffer allocations across ranks; a steady-state
    /// communication pattern stops allocating after warm-up.
    pub wire_allocs: u64,
}

impl FabricStats {
    /// Fraction of communication time that was overlapped with payload
    /// work rather than spent blocked: `1 − blocked/total` (mean over
    /// ranks). 0 when no communication happened.
    pub fn overlap_fraction(&self) -> f64 {
        if self.mean_comm_seconds <= 0.0 {
            0.0
        } else {
            (1.0 - self.mean_blocked_seconds / self.mean_comm_seconds).clamp(0.0, 1.0)
        }
    }

    /// Flatten these counters into the unified metrics registry under
    /// `prefix` (e.g. `dist.fabric`). The struct remains the typed view;
    /// the registry feeds the exported metrics snapshot.
    pub fn publish_into(&self, metrics: &qsim_telemetry::MetricsRegistry, prefix: &str) {
        metrics.counter_add(&format!("{prefix}.n_ranks"), self.n_ranks as u64);
        metrics.counter_add(&format!("{prefix}.bytes_sent"), self.total_bytes_sent);
        metrics.counter_add(&format!("{prefix}.wire_allocs"), self.wire_allocs);
        metrics.gauge_set(&format!("{prefix}.max_comm_seconds"), self.max_comm_seconds);
        metrics.gauge_set(
            &format!("{prefix}.mean_comm_seconds"),
            self.mean_comm_seconds,
        );
        metrics.gauge_set(
            &format!("{prefix}.max_blocked_seconds"),
            self.max_blocked_seconds,
        );
        metrics.gauge_set(
            &format!("{prefix}.mean_blocked_seconds"),
            self.mean_blocked_seconds,
        );
        metrics.gauge_set(
            &format!("{prefix}.overlap_fraction"),
            self.overlap_fraction(),
        );
    }
}

type MsgKey = (usize, u64); // (source rank, sequence number)

struct Mailbox {
    slots: Mutex<HashMap<MsgKey, WireBuf>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// Generation-counting barrier state (see [`Fabric::barrier_wait`]).
#[derive(Default)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

/// Sentinel for "no rank has poisoned the fabric".
const UNPOISONED: usize = usize::MAX;

/// Observer invoked exactly once, with the root-cause rank, when the
/// fabric is first poisoned. This is the flight-recorder tap: it runs
/// on the dying rank's thread *before* the poison notifications wake
/// the other ranks, so a crash dump taken inside the hook captures the
/// fabric at the instant of death. Keep it quick — every peer is
/// blocked until it returns.
pub type PoisonHook = std::sync::Arc<dyn Fn(usize) + Send + Sync>;

/// Shared fabric state.
pub struct Fabric {
    mailboxes: Vec<Mailbox>,
    /// The barrier deliberately uses std's futex-backed primitives, not
    /// parking_lot: parking_lot heap-allocates a per-thread parking node
    /// on a thread's first park, which would break the swap engine's
    /// zero-allocation steady state whenever a rank's first blocking wait
    /// happens to be a barrier.
    barrier: std::sync::Mutex<BarrierState>,
    barrier_cv: std::sync::Condvar,
    counters: Vec<CommCounters>,
    /// Recycled wire buffers, indexed by the rank that *sends* with them.
    /// Receivers return consumed buffers to the original sender's pool, so
    /// a repeating communication pattern finds right-sized buffers waiting.
    pools: Vec<Mutex<Vec<WireBuf>>>,
    /// Rank id of the first rank that failed, or [`UNPOISONED`]. Once
    /// set, every blocking wait (recv, barrier) aborts instead of
    /// waiting for a peer that will never arrive.
    poisoned_by: AtomicUsize,
    /// Scripted failures for fault-injection testing.
    faults: Option<FaultPlan>,
    /// First-poison observer (see [`PoisonHook`]).
    poison_hook: Option<PoisonHook>,
}

impl Fabric {
    fn new(n_ranks: usize, faults: Option<FaultPlan>, poison_hook: Option<PoisonHook>) -> Self {
        Self {
            mailboxes: (0..n_ranks).map(|_| Mailbox::new()).collect(),
            barrier: std::sync::Mutex::new(BarrierState::default()),
            barrier_cv: std::sync::Condvar::new(),
            counters: (0..n_ranks).map(|_| CommCounters::default()).collect(),
            pools: (0..n_ranks).map(|_| Mutex::new(Vec::new())).collect(),
            poisoned_by: AtomicUsize::new(UNPOISONED),
            faults,
            poison_hook,
        }
    }

    fn n_ranks(&self) -> usize {
        self.mailboxes.len()
    }

    /// First rank to have poisoned the fabric, if any.
    fn poisoner(&self) -> Option<usize> {
        match self.poisoned_by.load(Ordering::SeqCst) {
            UNPOISONED => None,
            r => Some(r),
        }
    }

    /// Mark the fabric dead on behalf of `rank` (first writer wins) and
    /// wake every blocked wait so peers abort instead of hanging. The
    /// flag is set *before* the notifications, and waiters re-check it
    /// under the same locks the notifications take, so no wakeup is
    /// lost.
    fn poison(&self, rank: usize) {
        let won = self
            .poisoned_by
            .compare_exchange(UNPOISONED, rank, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        // Only the root-cause poisoner fires the hook, and it fires
        // before the wakeups: the crash record sees the fabric exactly
        // as the first failure left it.
        if won {
            if let Some(hook) = &self.poison_hook {
                hook(rank);
            }
        }
        for mb in &self.mailboxes {
            let _guard = mb.slots.lock();
            mb.cv.notify_all();
        }
        let _guard = self.barrier.lock().unwrap_or_else(|e| e.into_inner());
        self.barrier_cv.notify_all();
    }

    /// Generation barrier that aborts when the fabric is poisoned
    /// (`std::sync::Barrier` cannot be interrupted, which is exactly the
    /// hang this replaces).
    fn barrier_wait(&self) -> Result<(), usize> {
        let mut s = self.barrier.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = self.poisoner() {
            return Err(p);
        }
        s.arrived += 1;
        if s.arrived == self.n_ranks() {
            s.arrived = 0;
            s.generation += 1;
            self.barrier_cv.notify_all();
            return Ok(());
        }
        let generation = s.generation;
        while s.generation == generation {
            s = self.barrier_cv.wait(s).unwrap_or_else(|e| e.into_inner());
            if let Some(p) = self.poisoner() {
                return Err(p);
            }
        }
        Ok(())
    }

    /// Take a buffer of `bytes` from `owner`'s pool (best fit), allocating
    /// or growing (and counting the miss) only when the pool cannot serve.
    fn take_wire(&self, owner: usize, bytes: usize) -> WireBuf {
        let mut pool = self.pools[owner].lock();
        let mut best: Option<usize> = None;
        for (i, b) in pool.iter().enumerate() {
            if b.capacity_bytes() >= bytes
                && best.is_none_or(|j: usize| pool[j].capacity_bytes() > b.capacity_bytes())
            {
                best = Some(i);
            }
        }
        let mut buf = match best.or(if pool.is_empty() { None } else { Some(0) }) {
            Some(i) => pool.swap_remove(i),
            None => WireBuf {
                words: Vec::new(),
                bytes: 0,
            },
        };
        drop(pool);
        if buf.set_byte_len(bytes) {
            self.counters[owner]
                .wire_allocs
                .fetch_add(1, Ordering::Relaxed);
        }
        buf
    }

    fn return_wire(&self, owner: usize, buf: WireBuf) {
        self.pools[owner].lock().push(buf);
    }
}

/// Per-rank handle passed to the rank body.
pub struct RankCtx<'a> {
    rank: usize,
    n_ranks: usize,
    fabric: &'a Fabric,
    /// Next sequence number for messages TO each peer.
    send_seq: Vec<u64>,
    /// Next expected sequence number FROM each peer.
    recv_seq: Vec<u64>,
}

impl<'a> RankCtx<'a> {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Synchronize all ranks. Panics (with a poison marker the driver
    /// classifies as [`SimError::FabricPoisoned`]) when a peer has
    /// already failed — the barrier would otherwise wait forever.
    pub fn barrier(&self) {
        let t0 = Instant::now();
        let res = self.fabric.barrier_wait();
        let dt = t0.elapsed().as_nanos() as u64;
        let c = &self.fabric.counters[self.rank];
        c.comm_nanos.fetch_add(dt, Ordering::Relaxed);
        c.blocked_nanos.fetch_add(dt, Ordering::Relaxed);
        if let Err(p) = res {
            panic!("{POISON_MARKER} by rank {p}; barrier aborted");
        }
    }

    /// Execute the scripted fault (if any) for this rank at `swap_index`:
    /// a delay sleeps here; a kill poisons the fabric (unblocking every
    /// peer) and returns the typed error the driver will surface.
    pub fn fault_point(&mut self, swap_index: usize) -> Result<(), SimError> {
        let Some(plan) = &self.fabric.faults else {
            return Ok(());
        };
        match plan.action(self.rank, swap_index) {
            FaultAction::None => Ok(()),
            FaultAction::Delay(by) => {
                let t0 = Instant::now();
                std::thread::sleep(by);
                let dt = t0.elapsed().as_nanos() as u64;
                let c = &self.fabric.counters[self.rank];
                c.comm_nanos.fetch_add(dt, Ordering::Relaxed);
                c.blocked_nanos.fetch_add(dt, Ordering::Relaxed);
                Ok(())
            }
            FaultAction::Kill => {
                self.fabric.poison(self.rank);
                Err(SimError::InjectedFault {
                    rank: self.rank,
                    swap_index,
                })
            }
        }
    }

    /// Send `len` elements to `dst`, letting `fill` pack them directly
    /// into the (pooled) wire buffer — the zero-copy send path: exactly
    /// one write of the payload, no allocation in steady state.
    pub fn send_with<T: Copy>(&mut self, dst: usize, len: usize, fill: impl FnOnce(&mut [T])) {
        assert!(dst < self.n_ranks, "bad destination {dst}");
        assert_ne!(dst, self.rank, "self-sends are plain copies, not messages");
        let t0 = Instant::now();
        let bytes = len * std::mem::size_of::<T>();
        let mut buf = self.fabric.take_wire(self.rank, bytes);
        fill(buf.as_mut_slice::<T>());
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        {
            let mb = &self.fabric.mailboxes[dst];
            let mut slots = mb.slots.lock();
            slots.insert((self.rank, seq), buf);
            mb.cv.notify_all();
        }
        self.fabric.counters[self.rank]
            .bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.account_time(t0);
    }

    /// Receive the next in-order wire buffer from `src` (blocking); the
    /// buffer is NOT yet recycled — pass it back via `Fabric::return_wire`
    /// after use. Internal building block for the public recv paths.
    fn recv_wire(&mut self, src: usize) -> WireBuf {
        assert!(src < self.n_ranks, "bad source {src}");
        assert_ne!(src, self.rank, "self-receives are plain copies");
        let seq = self.recv_seq[src];
        self.recv_seq[src] += 1;
        let mb = &self.fabric.mailboxes[self.rank];
        let mut blocked = 0u64;
        let mut slots = mb.slots.lock();
        loop {
            if let Some(buf) = slots.remove(&(src, seq)) {
                drop(slots);
                if blocked > 0 {
                    self.fabric.counters[self.rank]
                        .blocked_nanos
                        .fetch_add(blocked, Ordering::Relaxed);
                }
                return buf;
            }
            // A poisoned fabric means the message may never arrive:
            // abort instead of waiting forever on a dead peer.
            if let Some(p) = self.fabric.poisoner() {
                panic!("{POISON_MARKER} by rank {p}; recv from {src} aborted");
            }
            let tb = Instant::now();
            mb.cv.wait(&mut slots);
            blocked += tb.elapsed().as_nanos() as u64;
        }
    }

    /// Receive from `src` and unpack directly out of the wire buffer —
    /// the zero-copy receive path. The buffer returns to `src`'s pool.
    pub fn recv_with<T: Copy, R>(&mut self, src: usize, consume: impl FnOnce(&[T]) -> R) -> R {
        let t0 = Instant::now();
        let buf = self.recv_wire(src);
        let out = consume(buf.as_slice::<T>());
        self.fabric.return_wire(src, buf);
        self.account_time(t0);
        out
    }

    /// Receive from `src` into caller-provided storage (one memcpy, no
    /// allocation). Panics if the payload length differs from `out.len()`.
    pub fn recv_into<T: Copy>(&mut self, src: usize, out: &mut [T]) {
        self.recv_with::<T, ()>(src, |wire| {
            assert_eq!(wire.len(), out.len(), "payload length mismatch from {src}");
            out.copy_from_slice(wire);
        });
    }

    /// Send raw bytes to `dst` (non-blocking: the mailbox buffers).
    pub fn send_bytes(&mut self, dst: usize, bytes: Vec<u8>) {
        self.send_with::<u8>(dst, bytes.len(), |wire| wire.copy_from_slice(&bytes));
    }

    /// Receive the next in-order message from `src` (blocking).
    pub fn recv_bytes(&mut self, src: usize) -> Vec<u8> {
        self.recv_with::<u8, Vec<u8>>(src, |wire| wire.to_vec())
    }

    /// Send a typed slice (one memcpy into the pooled wire buffer).
    pub fn send_slice<T: Copy>(&mut self, dst: usize, data: &[T]) {
        self.send_with::<T>(dst, data.len(), |wire| wire.copy_from_slice(data));
    }

    /// Receive a typed vector; panics if the payload size is not a
    /// multiple of `size_of::<T>()`.
    pub fn recv_vec<T: Copy>(&mut self, src: usize) -> Vec<T> {
        self.recv_with::<T, Vec<T>>(src, |wire| wire.to_vec())
    }

    /// Symmetric pairwise exchange: send to and receive from `partner`.
    /// Sends first (mailboxes buffer), so no deadlock.
    pub fn exchange<T: Copy>(&mut self, partner: usize, data: &[T]) -> Vec<T> {
        self.send_slice(partner, data);
        self.recv_vec(partner)
    }

    /// Stock this rank's wire pool with `count` buffers of `bytes` each,
    /// so a known upcoming communication pattern never allocates — used by
    /// the allocation-freedom test and available to latency-sensitive
    /// callers.
    pub fn prewarm_wire(&mut self, bytes: usize, count: usize) {
        for _ in 0..count {
            let buf = WireBuf::with_byte_len(bytes);
            self.fabric.return_wire(self.rank, buf);
        }
    }

    pub(crate) fn account_time(&self, t0: Instant) {
        self.fabric.counters[self.rank]
            .comm_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// This rank's byte counter (for tests/diagnostics).
    pub fn bytes_sent(&self) -> u64 {
        self.fabric.counters[self.rank]
            .bytes_sent
            .load(Ordering::Relaxed)
    }

    /// Seconds this rank has spent in communication so far.
    pub fn comm_seconds(&self) -> f64 {
        self.fabric.counters[self.rank]
            .comm_nanos
            .load(Ordering::Relaxed) as f64
            / 1e9
    }

    /// Seconds this rank has spent blocked (waiting, not packing) so far.
    pub fn blocked_seconds(&self) -> f64 {
        self.fabric.counters[self.rank]
            .blocked_nanos
            .load(Ordering::Relaxed) as f64
            / 1e9
    }

    /// Wire-buffer allocations charged to this rank so far.
    pub fn wire_allocs(&self) -> u64 {
        self.fabric.counters[self.rank]
            .wire_allocs
            .load(Ordering::Relaxed)
    }
}

/// Marker prefix of the panic a blocked wait raises when the fabric is
/// poisoned; the driver classifies such panics as
/// [`SimError::FabricPoisoned`] (collateral) rather than a root cause.
const POISON_MARKER: &str = "fabric poisoned";

/// Best-effort string form of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Spawn `n_ranks` rank threads running a fallible `body` under an
/// optional [`FaultPlan`] and collect their results plus fabric-wide
/// statistics.
///
/// Failure semantics: the first rank to fail — by returning `Err`, by
/// panicking, or by a scripted kill — poisons the fabric, which wakes
/// every peer blocked in a recv or barrier; those peers abort and are
/// recorded as [`SimError::FabricPoisoned`]. After *all* threads have
/// joined (no detached ranks, no hangs), the root cause is selected:
/// direct errors beat panics, panics beat collateral poisoning; ties go
/// to the lowest rank.
pub fn try_run_cluster_with<T, F>(
    n_ranks: usize,
    faults: Option<FaultPlan>,
    body: F,
) -> Result<(Vec<T>, FabricStats), SimError>
where
    T: Send,
    F: Fn(&mut RankCtx) -> Result<T, SimError> + Sync,
{
    try_run_cluster_hooked(n_ranks, faults, None, body)
}

/// [`try_run_cluster_with`] plus a [`PoisonHook`] observing the first
/// poisoning. The hook fires at most once per cluster run, on the thread
/// of the root-cause rank, before any peer is woken — a flight recorder
/// installed here sees the dying rank's final spans and counters.
pub fn try_run_cluster_hooked<T, F>(
    n_ranks: usize,
    faults: Option<FaultPlan>,
    poison_hook: Option<PoisonHook>,
    body: F,
) -> Result<(Vec<T>, FabricStats), SimError>
where
    T: Send,
    F: Fn(&mut RankCtx) -> Result<T, SimError> + Sync,
{
    assert!(
        n_ranks >= 1 && n_ranks.is_power_of_two(),
        "rank count must be 2^g"
    );
    let fabric = Fabric::new(n_ranks, faults, poison_hook);
    let mut results: Vec<Option<Result<T, SimError>>> = (0..n_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (r, slot) in results.iter_mut().enumerate() {
            let fabric = &fabric;
            let body = &body;
            scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank: r,
                    n_ranks,
                    fabric,
                    send_seq: vec![0; n_ranks],
                    recv_seq: vec![0; n_ranks],
                };
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
                *slot = Some(match outcome {
                    Ok(Ok(v)) => Ok(v),
                    Ok(Err(e)) => {
                        fabric.poison(r);
                        Err(e)
                    }
                    Err(payload) => {
                        fabric.poison(r);
                        let message = panic_message(payload.as_ref());
                        if message.starts_with(POISON_MARKER) {
                            Err(SimError::FabricPoisoned { rank: r })
                        } else {
                            Err(SimError::RankPanicked { rank: r, message })
                        }
                    }
                });
            });
        }
        // The scope joins every rank thread; poisoning guarantees none
        // of them is still blocked on a dead peer.
    });
    let stats = collect_stats(&fabric, n_ranks);
    let mut values = Vec::with_capacity(n_ranks);
    let mut first_error: Option<SimError> = None;
    for res in results {
        match res.expect("rank slot unfilled") {
            Ok(v) => values.push(v),
            Err(e) => {
                let better = first_error
                    .as_ref()
                    .is_none_or(|f| e.severity() < f.severity());
                if better {
                    first_error = Some(e);
                }
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok((values, stats)),
    }
}

/// [`try_run_cluster_with`] without a fault plan.
pub fn try_run_cluster<T, F>(n_ranks: usize, body: F) -> Result<(Vec<T>, FabricStats), SimError>
where
    T: Send,
    F: Fn(&mut RankCtx) -> Result<T, SimError> + Sync,
{
    try_run_cluster_with(n_ranks, None, body)
}

/// Spawn `n_ranks` rank threads running `body` and collect their results
/// plus fabric-wide statistics. Infallible wrapper over
/// [`try_run_cluster`]: any rank failure panics here (on the driver
/// thread, after all ranks have been joined) with the root cause.
pub fn run_cluster<T, F>(n_ranks: usize, body: F) -> (Vec<T>, FabricStats)
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    match try_run_cluster(n_ranks, |ctx| Ok(body(ctx))) {
        Ok(out) => out,
        Err(e) => panic!("rank thread panicked: {e}"),
    }
}

fn collect_stats(fabric: &Fabric, n_ranks: usize) -> FabricStats {
    let total_bytes: u64 = fabric
        .counters
        .iter()
        .map(|c| c.bytes_sent.load(Ordering::Relaxed))
        .sum();
    let comm_secs: Vec<f64> = fabric
        .counters
        .iter()
        .map(|c| c.comm_nanos.load(Ordering::Relaxed) as f64 / 1e9)
        .collect();
    let blocked_secs: Vec<f64> = fabric
        .counters
        .iter()
        .map(|c| c.blocked_nanos.load(Ordering::Relaxed) as f64 / 1e9)
        .collect();
    FabricStats {
        n_ranks,
        total_bytes_sent: total_bytes,
        max_comm_seconds: comm_secs.iter().cloned().fold(0.0, f64::max),
        mean_comm_seconds: comm_secs.iter().sum::<f64>() / n_ranks as f64,
        max_blocked_seconds: blocked_secs.iter().cloned().fold(0.0, f64::max),
        mean_blocked_seconds: blocked_secs.iter().sum::<f64>() / n_ranks as f64,
        wire_allocs: fabric
            .counters
            .iter()
            .map(|c| c.wire_allocs.load(Ordering::Relaxed))
            .sum(),
    }
}

/// Reinterpret a `Copy` slice as bytes (one allocation + memcpy).
pub fn slice_to_bytes<T: Copy>(data: &[T]) -> Vec<u8> {
    let len = std::mem::size_of_val(data);
    let mut out = vec![0u8; len];
    // SAFETY: T is Copy (no drop), byte-level read of initialized memory.
    unsafe {
        std::ptr::copy_nonoverlapping(data.as_ptr() as *const u8, out.as_mut_ptr(), len);
    }
    out
}

/// Inverse of [`slice_to_bytes`].
pub fn bytes_to_vec<T: Copy>(bytes: Vec<u8>) -> Vec<T> {
    let sz = std::mem::size_of::<T>();
    assert!(
        sz > 0 && bytes.len().is_multiple_of(sz),
        "payload size mismatch"
    );
    let n = bytes.len() / sz;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: T is Copy; we copy bytes of exactly n elements into the
    // reserved buffer, then fix the length.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_util::c64;

    #[test]
    fn ring_pass_delivers_in_order() {
        let (results, stats) = run_cluster(4, |ctx| {
            let next = (ctx.rank() + 1) % 4;
            let prev = (ctx.rank() + 3) % 4;
            // Two messages: ordering must hold.
            ctx.send_slice(next, &[ctx.rank() as u64]);
            ctx.send_slice(next, &[ctx.rank() as u64 + 100]);
            let a = ctx.recv_vec::<u64>(prev);
            let b = ctx.recv_vec::<u64>(prev);
            (a[0], b[0])
        });
        for (r, &(a, b)) in results.iter().enumerate() {
            let prev = (r + 3) % 4;
            assert_eq!(a, prev as u64);
            assert_eq!(b, prev as u64 + 100);
        }
        // 8 messages x 8 bytes.
        assert_eq!(stats.total_bytes_sent, 64);
    }

    #[test]
    fn exchange_is_symmetric() {
        let (results, _) = run_cluster(2, |ctx| {
            let partner = 1 - ctx.rank();
            let data = vec![c64::new(ctx.rank() as f64, 0.0); 8];
            ctx.exchange(partner, &data)
        });
        assert!(results[0].iter().all(|&a| a == c64::new(1.0, 0.0)));
        assert!(results[1].iter().all(|&a| a == c64::new(0.0, 0.0)));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let (results, _) = run_cluster(8, |ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all 8 increments.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 8));
    }

    #[test]
    fn byte_round_trip_preserves_amplitudes() {
        let data = vec![c64::new(1.5, -2.5), c64::new(0.0, 3.25)];
        let bytes = slice_to_bytes(&data);
        assert_eq!(bytes.len(), 32);
        let back: Vec<c64> = bytes_to_vec(bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn comm_time_is_accounted() {
        let (_, stats) = run_cluster(2, |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                ctx.send_slice(1, &[1u8; 1024]);
            } else {
                // Rank 1 blocks waiting ~20ms.
                let _ = ctx.recv_vec::<u8>(0);
            }
            ctx.barrier();
        });
        assert!(
            stats.max_comm_seconds > 0.01,
            "blocked recv must be accounted: {}",
            stats.max_comm_seconds
        );
        assert!(
            stats.max_blocked_seconds > 0.01,
            "the wait must show up as blocked time: {}",
            stats.max_blocked_seconds
        );
        assert_eq!(stats.total_bytes_sent, 1024);
    }

    #[test]
    fn send_with_recv_into_round_trip() {
        let (results, stats) = run_cluster(2, |ctx| {
            let partner = 1 - ctx.rank();
            let base = (ctx.rank() * 100) as u64;
            ctx.send_with::<u64>(partner, 16, |wire| {
                for (i, w) in wire.iter_mut().enumerate() {
                    *w = base + i as u64;
                }
            });
            let mut out = [0u64; 16];
            ctx.recv_into(partner, &mut out);
            out
        });
        for (r, out) in results.iter().enumerate() {
            let base = ((1 - r) * 100) as u64;
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, base + i as u64);
            }
        }
        assert_eq!(stats.total_bytes_sent, 2 * 16 * 8);
    }

    #[test]
    fn wire_buffers_are_recycled() {
        // A repeating message pattern must stop allocating once warm: the
        // receiver returns each consumed buffer to the sender's pool.
        let (allocs, stats) = run_cluster(2, |ctx| {
            let partner = 1 - ctx.rank();
            for round in 0..20u64 {
                ctx.send_with::<u64>(partner, 64, |wire| wire.fill(round));
                ctx.recv_with::<u64, ()>(partner, |wire| {
                    assert!(wire.iter().all(|&v| v == round));
                });
                ctx.barrier(); // buffer is back in the pool before next round
            }
            ctx.wire_allocs()
        });
        for &a in &allocs {
            assert!(a <= 2, "steady-state sends must reuse buffers: {a} allocs");
        }
        assert_eq!(stats.wire_allocs, allocs.iter().sum::<u64>());
    }

    #[test]
    fn prewarm_eliminates_allocations() {
        let (allocs, _) = run_cluster(2, |ctx| {
            let partner = 1 - ctx.rank();
            ctx.prewarm_wire(64 * 8, 4);
            for round in 0..8u64 {
                ctx.send_with::<u64>(partner, 64, |wire| wire.fill(round));
                let mut out = [0u64; 64];
                ctx.recv_into(partner, &mut out);
                assert!(out.iter().all(|&v| v == round));
            }
            ctx.wire_allocs()
        });
        assert_eq!(allocs, vec![0, 0], "prewarmed pools must never allocate");
    }

    #[test]
    fn empty_message_round_trips() {
        let (results, stats) = run_cluster(2, |ctx| {
            let partner = 1 - ctx.rank();
            ctx.send_slice::<u64>(partner, &[]);
            ctx.recv_vec::<u64>(partner)
        });
        assert!(results.iter().all(|v| v.is_empty()));
        assert_eq!(stats.total_bytes_sent, 0);
    }

    #[test]
    fn overlap_fraction_is_sane() {
        let (_, stats) = run_cluster(2, |ctx| {
            let partner = 1 - ctx.rank();
            ctx.exchange(partner, &[0u8; 4096]);
        });
        let f = stats.overlap_fraction();
        assert!(
            (0.0..=1.0).contains(&f),
            "overlap fraction {f} out of range"
        );
    }

    #[test]
    #[should_panic(expected = "rank count must be 2^g")]
    fn rejects_non_power_of_two() {
        let _ = run_cluster(3, |_| ());
    }

    #[test]
    fn injected_kill_yields_typed_error_and_unblocks_peers() {
        // Rank 2 dies at "swap" 1; every other rank is blocked in a recv
        // it will never satisfy. Without poisoning this hangs forever;
        // with it, the driver returns the injected fault as root cause.
        let plan = FaultPlan::new().kill(2, 1);
        let res = try_run_cluster_with::<(), _>(4, Some(plan), |ctx| {
            for swap in 0..2usize {
                ctx.fault_point(swap)?;
                if ctx.rank() == 2 {
                    for dst in [0, 1, 3] {
                        ctx.send_slice(dst, &[swap as u64]);
                    }
                } else {
                    // At swap 1 this message never comes.
                    let _ = ctx.recv_vec::<u64>(2);
                }
            }
            Ok(())
        });
        match res {
            Err(SimError::InjectedFault { rank, swap_index }) => {
                assert_eq!((rank, swap_index), (2, 1));
            }
            other => panic!("expected InjectedFault, got {other:?}"),
        }
    }

    #[test]
    fn injected_delay_still_completes() {
        let plan = FaultPlan::new().delay(0, 0, std::time::Duration::from_millis(15));
        let (vals, stats) = try_run_cluster_with(2, Some(plan), |ctx| {
            ctx.fault_point(0)?;
            let partner = 1 - ctx.rank();
            Ok(ctx.exchange(partner, &[ctx.rank() as u64])[0])
        })
        .unwrap();
        assert_eq!(vals, vec![1, 0]);
        assert!(
            stats.max_blocked_seconds >= 0.01,
            "delay must be accounted as blocked time"
        );
    }

    #[test]
    fn panicking_rank_surfaces_as_root_cause_not_collateral() {
        let res = try_run_cluster::<(), _>(4, |ctx| {
            if ctx.rank() == 3 {
                panic!("deliberate failure in rank body");
            }
            ctx.barrier(); // peers block here until poisoned
            Ok(())
        });
        match res {
            Err(SimError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 3);
                assert!(message.contains("deliberate failure"));
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn kill_at_barrier_unblocks_barrier_waiters() {
        let plan = FaultPlan::new().kill(1, 0);
        let res = try_run_cluster_with::<(), _>(8, Some(plan), |ctx| {
            if ctx.rank() == 1 {
                ctx.fault_point(0)?;
            }
            ctx.barrier();
            Ok(())
        });
        assert!(
            matches!(res, Err(SimError::InjectedFault { rank: 1, .. })),
            "got {res:?}"
        );
    }

    #[test]
    fn error_return_propagates_with_rank_attribution() {
        let res = try_run_cluster::<(), _>(2, |ctx| {
            if ctx.rank() == 0 {
                return Err(SimError::Checkpoint("slice digest mismatch".into()));
            }
            let _ = ctx.recv_vec::<u64>(0); // would hang without poisoning
            Ok(())
        });
        match res {
            Err(SimError::Checkpoint(m)) => assert!(m.contains("digest")),
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn poison_hook_fires_once_with_root_cause_rank() {
        use std::sync::Arc;

        // Rank 2 is killed; every peer then dies of collateral poisoning
        // (which also calls `poison`). The hook must still fire exactly
        // once, and with the root-cause rank.
        let calls = Arc::new(AtomicU64::new(0));
        let seen_rank = Arc::new(AtomicUsize::new(usize::MAX));
        let hook: PoisonHook = {
            let calls = Arc::clone(&calls);
            let seen_rank = Arc::clone(&seen_rank);
            Arc::new(move |rank| {
                calls.fetch_add(1, Ordering::SeqCst);
                seen_rank.store(rank, Ordering::SeqCst);
            })
        };
        let plan = FaultPlan::new().kill(2, 0);
        let res = try_run_cluster_hooked::<(), _>(4, Some(plan), Some(hook), |ctx| {
            ctx.fault_point(0)?;
            ctx.barrier(); // peers block here until poisoned
            Ok(())
        });
        assert!(
            matches!(res, Err(SimError::InjectedFault { rank: 2, .. })),
            "got {res:?}"
        );
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "hook must fire exactly once"
        );
        assert_eq!(seen_rank.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn poison_hook_silent_on_clean_run() {
        use std::sync::Arc;
        let calls = Arc::new(AtomicU64::new(0));
        let hook: PoisonHook = {
            let calls = Arc::clone(&calls);
            Arc::new(move |_| {
                calls.fetch_add(1, Ordering::SeqCst);
            })
        };
        let (vals, _) = try_run_cluster_hooked(2, None, Some(hook), |ctx| {
            ctx.barrier();
            Ok(ctx.rank())
        })
        .unwrap();
        assert_eq!(vals, vec![0, 1]);
        assert_eq!(calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn single_rank_cluster_works() {
        let (results, stats) = run_cluster(1, |ctx| {
            ctx.barrier();
            ctx.rank()
        });
        assert_eq!(results, vec![0]);
        assert_eq!(stats.total_bytes_sent, 0);
    }
}
