//! Rank fabric: threads, ordered point-to-point messaging, barriers, and
//! communication accounting.
//!
//! Channel semantics mirror MPI's per-pair ordering: messages from rank A
//! to rank B are matched in send order (each side keeps sequence
//! counters), so collectives built on top are deterministic without
//! explicit tags. Payloads are raw bytes; [`RankCtx::send_slice`] /
//! [`RankCtx::recv_vec`] move any `Copy` element type through the fabric
//! with one memcpy per side.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Per-rank communication counters (bytes actually put on the "wire";
/// self-copies in collectives are not counted, matching MPI accounting).
#[derive(Debug, Default)]
pub struct CommCounters {
    pub bytes_sent: AtomicU64,
    /// Nanoseconds blocked in communication calls (send/recv/barrier).
    pub comm_nanos: AtomicU64,
}

/// Aggregated statistics returned by [`run_cluster`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FabricStats {
    pub n_ranks: usize,
    pub total_bytes_sent: u64,
    /// Max over ranks of time blocked in communication, in seconds — the
    /// number behind Table 2's "Comm." column.
    pub max_comm_seconds: f64,
    /// Mean over ranks of communication seconds.
    pub mean_comm_seconds: f64,
}

type MsgKey = (usize, u64); // (source rank, sequence number)

struct Mailbox {
    slots: Mutex<HashMap<MsgKey, Vec<u8>>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// Shared fabric state.
pub struct Fabric {
    mailboxes: Vec<Mailbox>,
    barrier: Barrier,
    counters: Vec<CommCounters>,
}

impl Fabric {
    fn new(n_ranks: usize) -> Self {
        Self {
            mailboxes: (0..n_ranks).map(|_| Mailbox::new()).collect(),
            barrier: Barrier::new(n_ranks),
            counters: (0..n_ranks).map(|_| CommCounters::default()).collect(),
        }
    }
}

/// Per-rank handle passed to the rank body.
pub struct RankCtx<'a> {
    rank: usize,
    n_ranks: usize,
    fabric: &'a Fabric,
    /// Next sequence number for messages TO each peer.
    send_seq: Vec<u64>,
    /// Next expected sequence number FROM each peer.
    recv_seq: Vec<u64>,
}

impl<'a> RankCtx<'a> {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let t0 = Instant::now();
        self.fabric.barrier.wait();
        self.account_time(t0);
    }

    /// Send raw bytes to `dst` (non-blocking: the mailbox buffers).
    pub fn send_bytes(&mut self, dst: usize, bytes: Vec<u8>) {
        assert!(dst < self.n_ranks, "bad destination {dst}");
        assert_ne!(dst, self.rank, "self-sends are plain copies, not messages");
        let t0 = Instant::now();
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        let len = bytes.len() as u64;
        {
            let mb = &self.fabric.mailboxes[dst];
            let mut slots = mb.slots.lock();
            slots.insert((self.rank, seq), bytes);
            mb.cv.notify_all();
        }
        self.fabric.counters[self.rank]
            .bytes_sent
            .fetch_add(len, Ordering::Relaxed);
        self.account_time(t0);
    }

    /// Receive the next in-order message from `src` (blocking).
    pub fn recv_bytes(&mut self, src: usize) -> Vec<u8> {
        assert!(src < self.n_ranks, "bad source {src}");
        assert_ne!(src, self.rank, "self-receives are plain copies");
        let t0 = Instant::now();
        let seq = self.recv_seq[src];
        self.recv_seq[src] += 1;
        let mb = &self.fabric.mailboxes[self.rank];
        let mut slots = mb.slots.lock();
        loop {
            if let Some(bytes) = slots.remove(&(src, seq)) {
                drop(slots);
                self.account_time(t0);
                return bytes;
            }
            mb.cv.wait(&mut slots);
        }
    }

    /// Send a typed slice (one memcpy into the wire buffer).
    pub fn send_slice<T: Copy>(&mut self, dst: usize, data: &[T]) {
        self.send_bytes(dst, slice_to_bytes(data));
    }

    /// Receive a typed vector; panics if the payload size is not a
    /// multiple of `size_of::<T>()`.
    pub fn recv_vec<T: Copy>(&mut self, src: usize) -> Vec<T> {
        bytes_to_vec(self.recv_bytes(src))
    }

    /// Symmetric pairwise exchange: send to and receive from `partner`.
    /// Sends first (mailboxes buffer), so no deadlock.
    pub fn exchange<T: Copy>(&mut self, partner: usize, data: &[T]) -> Vec<T> {
        self.send_slice(partner, data);
        self.recv_vec(partner)
    }

    pub(crate) fn account_time(&self, t0: Instant) {
        self.fabric.counters[self.rank]
            .comm_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// This rank's byte counter (for tests/diagnostics).
    pub fn bytes_sent(&self) -> u64 {
        self.fabric.counters[self.rank]
            .bytes_sent
            .load(Ordering::Relaxed)
    }

    /// Seconds this rank has spent blocked in communication so far.
    pub fn comm_seconds(&self) -> f64 {
        self.fabric.counters[self.rank]
            .comm_nanos
            .load(Ordering::Relaxed) as f64
            / 1e9
    }
}

/// Spawn `n_ranks` rank threads running `body` and collect their results
/// plus fabric-wide statistics. Panics in any rank propagate.
pub fn run_cluster<T, F>(n_ranks: usize, body: F) -> (Vec<T>, FabricStats)
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    assert!(n_ranks >= 1 && n_ranks.is_power_of_two(), "rank count must be 2^g");
    let fabric = Fabric::new(n_ranks);
    let mut results: Vec<Option<T>> = (0..n_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = results
            .iter_mut()
            .enumerate()
            .map(|(r, slot)| {
                let fabric = &fabric;
                let body = &body;
                scope.spawn(move || {
                    let mut ctx = RankCtx {
                        rank: r,
                        n_ranks,
                        fabric,
                        send_seq: vec![0; n_ranks],
                        recv_seq: vec![0; n_ranks],
                    };
                    *slot = Some(body(&mut ctx));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });
    let total_bytes: u64 = fabric
        .counters
        .iter()
        .map(|c| c.bytes_sent.load(Ordering::Relaxed))
        .sum();
    let comm_secs: Vec<f64> = fabric
        .counters
        .iter()
        .map(|c| c.comm_nanos.load(Ordering::Relaxed) as f64 / 1e9)
        .collect();
    let stats = FabricStats {
        n_ranks,
        total_bytes_sent: total_bytes,
        max_comm_seconds: comm_secs.iter().cloned().fold(0.0, f64::max),
        mean_comm_seconds: comm_secs.iter().sum::<f64>() / n_ranks as f64,
    };
    (results.into_iter().map(|r| r.unwrap()).collect(), stats)
}

/// Reinterpret a `Copy` slice as bytes (one allocation + memcpy).
pub fn slice_to_bytes<T: Copy>(data: &[T]) -> Vec<u8> {
    let len = std::mem::size_of_val(data);
    let mut out = vec![0u8; len];
    // SAFETY: T is Copy (no drop), byte-level read of initialized memory.
    unsafe {
        std::ptr::copy_nonoverlapping(data.as_ptr() as *const u8, out.as_mut_ptr(), len);
    }
    out
}

/// Inverse of [`slice_to_bytes`].
pub fn bytes_to_vec<T: Copy>(bytes: Vec<u8>) -> Vec<T> {
    let sz = std::mem::size_of::<T>();
    assert!(sz > 0 && bytes.len().is_multiple_of(sz), "payload size mismatch");
    let n = bytes.len() / sz;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: T is Copy; we copy bytes of exactly n elements into the
    // reserved buffer, then fix the length.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_util::c64;

    #[test]
    fn ring_pass_delivers_in_order() {
        let (results, stats) = run_cluster(4, |ctx| {
            let next = (ctx.rank() + 1) % 4;
            let prev = (ctx.rank() + 3) % 4;
            // Two messages: ordering must hold.
            ctx.send_slice(next, &[ctx.rank() as u64]);
            ctx.send_slice(next, &[ctx.rank() as u64 + 100]);
            let a = ctx.recv_vec::<u64>(prev);
            let b = ctx.recv_vec::<u64>(prev);
            (a[0], b[0])
        });
        for (r, &(a, b)) in results.iter().enumerate() {
            let prev = (r + 3) % 4;
            assert_eq!(a, prev as u64);
            assert_eq!(b, prev as u64 + 100);
        }
        // 8 messages x 8 bytes.
        assert_eq!(stats.total_bytes_sent, 64);
    }

    #[test]
    fn exchange_is_symmetric() {
        let (results, _) = run_cluster(2, |ctx| {
            let partner = 1 - ctx.rank();
            let data = vec![c64::new(ctx.rank() as f64, 0.0); 8];
            ctx.exchange(partner, &data)
        });
        assert!(results[0].iter().all(|&a| a == c64::new(1.0, 0.0)));
        assert!(results[1].iter().all(|&a| a == c64::new(0.0, 0.0)));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let (results, _) = run_cluster(8, |ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all 8 increments.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 8));
    }

    #[test]
    fn byte_round_trip_preserves_amplitudes() {
        let data = vec![c64::new(1.5, -2.5), c64::new(0.0, 3.25)];
        let bytes = slice_to_bytes(&data);
        assert_eq!(bytes.len(), 32);
        let back: Vec<c64> = bytes_to_vec(bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn comm_time_is_accounted() {
        let (_, stats) = run_cluster(2, |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                ctx.send_slice(1, &[1u8; 1024]);
            } else {
                // Rank 1 blocks waiting ~20ms.
                let _ = ctx.recv_vec::<u8>(0);
            }
            ctx.barrier();
        });
        assert!(
            stats.max_comm_seconds > 0.01,
            "blocked recv must be accounted: {}",
            stats.max_comm_seconds
        );
        assert_eq!(stats.total_bytes_sent, 1024);
    }

    #[test]
    #[should_panic(expected = "rank count must be 2^g")]
    fn rejects_non_power_of_two() {
        let _ = run_cluster(3, |_| ());
    }

    #[test]
    fn single_rank_cluster_works() {
        let (results, stats) = run_cluster(1, |ctx| {
            ctx.barrier();
            ctx.rank()
        });
        assert_eq!(results, vec![0]);
        assert_eq!(stats.total_bytes_sent, 0);
    }
}
