//! Fault-injection plans for the rank fabric.
//!
//! A [`FaultPlan`] scripts failures at *swap indices* — the natural
//! failure boundary of the paper's execution model, since swaps are the
//! only points where ranks are mutually dependent. Rank bodies opt in by
//! calling `RankCtx::fault_point(swap_index)` before each swap; the
//! fabric then either delays the rank (modelling a straggler / slow
//! link) or kills it (modelling node loss), poisoning the fabric so
//! peers unblock with a typed [`crate::SimError`] instead of hanging.

use std::time::Duration;

/// What a fault point should do for a given (rank, swap index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Sleep before participating in the swap (delayed delivery).
    Delay(Duration),
    /// Die at this boundary with [`crate::SimError::InjectedFault`].
    Kill,
}

/// A scripted set of failures, shared read-only by every rank.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    kills: Vec<(usize, usize)>,
    delays: Vec<(usize, usize, Duration)>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Kill `rank` when it reaches swap `swap_index`.
    pub fn kill(mut self, rank: usize, swap_index: usize) -> Self {
        self.kills.push((rank, swap_index));
        self
    }

    /// Delay `rank` by `by` when it reaches swap `swap_index`.
    pub fn delay(mut self, rank: usize, swap_index: usize, by: Duration) -> Self {
        self.delays.push((rank, swap_index, by));
        self
    }

    /// Resolve the scripted action for this (rank, swap index); a kill
    /// takes precedence over a delay at the same point.
    pub fn action(&self, rank: usize, swap_index: usize) -> FaultAction {
        if self.kills.contains(&(rank, swap_index)) {
            return FaultAction::Kill;
        }
        match self
            .delays
            .iter()
            .find(|&&(r, s, _)| (r, s) == (rank, swap_index))
        {
            Some(&(_, _, by)) => FaultAction::Delay(by),
            None => FaultAction::None,
        }
    }

    /// True when the plan scripts nothing at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.delays.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_actions_with_kill_precedence() {
        let plan = FaultPlan::new()
            .delay(1, 0, Duration::from_millis(5))
            .kill(2, 1)
            .delay(2, 1, Duration::from_millis(9));
        assert_eq!(plan.action(0, 0), FaultAction::None);
        assert_eq!(
            plan.action(1, 0),
            FaultAction::Delay(Duration::from_millis(5))
        );
        assert_eq!(plan.action(2, 1), FaultAction::Kill, "kill wins over delay");
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
