//! Analytic network performance model for petascale projection.
//!
//! The paper's 45-qubit run (0.5 PB, 8192 KNL nodes, Cray Aries dragonfly)
//! cannot be executed here; what CAN be reproduced exactly is the byte
//! volume of its two all-to-alls (pure scheduling, §3.6.1) — this module
//! turns those bytes into projected wall-clock using a dragonfly-style
//! model, reproducing the shape of the paper's §4.1.2 numbers (78 % of
//! time in communication, ≈ 0.43 PFLOPS sustained).
//!
//! Model: an all-to-all of `b` bytes per node over `p` nodes is limited by
//! per-node injection bandwidth and by the global bisection; with uniform
//! traffic each node injects `b·(p−1)/p` bytes, and the effective rate is
//! `min(injection_bw, 2·bisection / p)` — the standard uniform-traffic
//! bound for a dragonfly with full-bandwidth taper.

/// Machine parameters for the projection.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NetModel {
    /// Per-node injection bandwidth, bytes/s.
    pub injection_bw: f64,
    /// Global bisection bandwidth of the whole machine, bytes/s.
    pub bisection_bw: f64,
    /// Per-message latency, seconds (amortized; all-to-alls here move
    /// megabytes per pair, so latency barely matters).
    pub latency: f64,
    /// Achieved fraction of the theoretical uniform-traffic bound for
    /// large all-to-alls. Measured all-to-alls on big dragonfly
    /// installations reach 15–30 % of theoretical bisection (adaptive
    /// routing collisions, taper, drain effects); the paper's own 78 %
    /// comm share at 8192 nodes implies ≈ 0.3 GB/s/node, i.e. ~22 % of
    /// the Aries bound, which is the default here.
    pub alltoall_efficiency: f64,
    /// Per-node sustained compute, FLOP/s, for time-share projections.
    pub node_gflops: f64,
}

impl NetModel {
    /// Cray-Aries-like parameters for a Cori-II-scale system (public
    /// figures: ~10 GB/s injection per node, ~5.6 TB/s global bisection
    /// at full scale; ~250 GFLOPS sustained per KNL node on these kernels
    /// per the paper's own §4.1.2 estimate).
    pub fn cori_aries() -> Self {
        Self {
            injection_bw: 10e9,
            bisection_bw: 5.6e12,
            latency: 2e-6,
            alltoall_efficiency: 0.22,
            node_gflops: 250.0,
        }
    }

    /// Time for one all-to-all moving `bytes_per_node` from every one of
    /// `nodes` participants.
    pub fn all_to_all_seconds(&self, bytes_per_node: f64, nodes: usize) -> f64 {
        assert!(nodes >= 1);
        if nodes == 1 {
            return 0.0;
        }
        let p = nodes as f64;
        let wire_bytes = bytes_per_node * (p - 1.0) / p;
        // Uniform traffic: half the bytes cross the bisection.
        let bisection_rate = 2.0 * self.bisection_bw / p;
        let rate = self.injection_bw.min(bisection_rate) * self.alltoall_efficiency;
        wire_bytes / rate + self.latency * (p - 1.0).log2().max(1.0)
    }

    /// Time to compute `flops_per_node` on every node.
    pub fn compute_seconds(&self, flops_per_node: f64) -> f64 {
        flops_per_node / (self.node_gflops * 1e9)
    }

    /// Project a full run: `n_swaps` all-to-alls plus local compute.
    /// Returns (total seconds, communication fraction).
    pub fn project_run(
        &self,
        bytes_per_node_per_swap: f64,
        n_swaps: usize,
        flops_per_node: f64,
        nodes: usize,
    ) -> (f64, f64) {
        let comm = self.all_to_all_seconds(bytes_per_node_per_swap, nodes) * n_swaps as f64;
        let compute = self.compute_seconds(flops_per_node);
        let total = comm + compute;
        (total, if total > 0.0 { comm / total } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_all_to_all_is_free() {
        let m = NetModel::cori_aries();
        assert_eq!(m.all_to_all_seconds(1e9, 1), 0.0);
    }

    #[test]
    fn more_nodes_hit_bisection_limit() {
        let m = NetModel::cori_aries();
        // At small scale injection-bound; at large scale bisection-bound,
        // so doubling nodes roughly doubles the per-byte time.
        let t_small = m.all_to_all_seconds(1e9, 16);
        let t_big = m.all_to_all_seconds(1e9, 8192);
        assert!(t_big > t_small, "{t_big} <= {t_small}");
        // Injection bound at 16 nodes:
        // (15/16 GB) / (10 GB/s * 0.22) ≈ 0.43 s.
        assert!((t_small - 0.42614).abs() < 0.01, "t_small = {t_small}");
    }

    #[test]
    fn compute_time_matches_rate() {
        let m = NetModel::cori_aries();
        // 250 GFLOP at 250 GFLOPS = 1 second.
        assert!((m.compute_seconds(250e9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn projection_shape_45_qubits() {
        // The paper's 45-qubit run: 2^45 amplitudes over 8192 nodes,
        // 16 B each => 64 GB per node; 2 swaps; 569 gates fused into
        // ~115 clusters of k=4 on 2^32 local amplitudes.
        let m = NetModel::cori_aries();
        let local_amps = (1u64 << 45) / 8192;
        let bytes_per_node = local_amps as f64 * 16.0;
        // Table 1 (kmax=4): 73 clusters of 4-qubit sweeps, 126 FLOP/amp.
        let flops_per_node = 73.0 * 126.0 * local_amps as f64;
        let (total, comm_frac) = m.project_run(bytes_per_node, 2, flops_per_node, 8192);
        // The paper reports 553 s at 78 % communication: the projection
        // must land in the same communication-dominated regime.
        assert!(
            comm_frac > 0.6 && comm_frac < 0.9,
            "comm fraction {comm_frac}"
        );
        assert!(total > 300.0 && total < 1200.0, "total {total}");
    }
}
