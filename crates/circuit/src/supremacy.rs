//! Generator for Google's low-depth random quantum supremacy circuits
//! (Fig. 1 of the paper; Boixo et al. 2016).
//!
//! Construction rules, verbatim from the paper's Fig. 1 caption:
//!
//! 1. Clock cycle 0: a Hadamard on every qubit.
//! 2. Cycles 1, 2, …: one of eight CZ patterns, applied cyclically, such
//!    that every nearest-neighbour pair on the 2-D grid interacts exactly
//!    once every 8 cycles.
//! 3. In each cycle, a single-qubit gate is applied to every qubit that
//!    performed a CZ in the previous cycle but not in the current one.
//!    The gate is drawn from {T, X^1/2, Y^1/2}, except that a qubit's
//!    *second* single-qubit gate (the first being the cycle-0 Hadamard)
//!    is always T, and a randomly drawn gate must differ from the
//!    previous single-qubit gate on that qubit.
//!
//! The CZ patterns: the paper's figure is reproduced from the reference
//! generator, whose layer `t ∈ [0, 8)` activates the edge leaving grid
//! position `(r, c)` in direction `dir` (vertical for odd `t`, horizontal
//! for even `t`) iff `(r·(2−dir_r) + c·(2−dir_c)) mod 4 = ⌊t/2⌋`. The
//! eight layers partition the grid's edge set and each layer is a
//! matching — both properties are enforced by tests, since the exact
//! figure is the only normative spec.

use crate::circuit::Circuit;
use crate::gate::Gate;
use qsim_util::Xoshiro256;

/// Parameters of a supremacy-circuit instance.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SupremacySpec {
    /// Grid rows; the paper's "6 × 5" is rows × cols = 30 qubits.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Circuit depth counted in CZ clock cycles, matching the paper's
    /// "depth-25" terminology: the generated circuit has `depth + 1`
    /// clock cycles (the initial Hadamard layer plus `depth` CZ cycles).
    pub depth: u32,
    /// Instance seed.
    pub seed: u64,
}

impl SupremacySpec {
    pub fn n_qubits(&self) -> u32 {
        self.rows * self.cols
    }

    /// Number of nearest-neighbour grid edges.
    pub fn n_edges(&self) -> usize {
        (self.rows * (self.cols - 1) + (self.rows - 1) * self.cols) as usize
    }
}

/// The CZ edges of pattern layer `t ∈ [0, 8)` on a rows × cols grid.
/// Each edge is a `(qubit_a, qubit_b)` pair with `qubit = row*cols + col`.
pub fn cz_pattern(rows: u32, cols: u32, t: u32) -> Vec<(u32, u32)> {
    assert!(t < 8, "pattern index out of range");
    let vertical = t % 2 == 1;
    let shift = t / 2;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let (r2, c2) = if vertical { (r + 1, c) } else { (r, c + 1) };
            if r2 >= rows || c2 >= cols {
                continue;
            }
            let class = if vertical { r + 2 * c } else { 2 * r + c } % 4;
            if class == shift {
                edges.push((r * cols + c, r2 * cols + c2));
            }
        }
    }
    edges
}

/// The set of qubits participating in pattern layer `t` (bitset as Vec).
fn pattern_qubits(rows: u32, cols: u32, t: u32) -> Vec<bool> {
    let mut in_cz = vec![false; (rows * cols) as usize];
    for (a, b) in cz_pattern(rows, cols, t) {
        in_cz[a as usize] = true;
        in_cz[b as usize] = true;
    }
    in_cz
}

/// The three candidate random single-qubit gates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Sq {
    T,
    SqrtX,
    SqrtY,
}

impl Sq {
    fn gate(self, q: u32) -> Gate {
        match self {
            Sq::T => Gate::T(q),
            Sq::SqrtX => Gate::SqrtX(q),
            Sq::SqrtY => Gate::SqrtY(q),
        }
    }
}

/// Generate a supremacy circuit per the Fig. 1 rules. Deterministic in
/// `spec` (including the seed).
pub fn supremacy_circuit(spec: &SupremacySpec) -> Circuit {
    assert!(spec.rows >= 1 && spec.cols >= 1, "empty grid");
    assert!(spec.depth >= 1, "need at least one CZ cycle");
    let n = spec.n_qubits();
    let mut rng = Xoshiro256::seed_from_u64(spec.seed);
    let mut circuit = Circuit::new(n);

    // Cycle 0: Hadamard layer.
    circuit.begin_cycle();
    for q in 0..n {
        circuit.h(q);
    }

    // last random single-qubit gate per qubit; None = only the H so far.
    let mut last_sq: Vec<Option<Sq>> = vec![None; n as usize];
    let mut prev_in_cz = vec![false; n as usize];

    for cycle in 1..=spec.depth {
        let t = (cycle - 1) % 8;
        let cur_in_cz = pattern_qubits(spec.rows, spec.cols, t);
        circuit.begin_cycle();
        // Single-qubit gates: CZ in previous cycle, none in this one.
        for q in 0..n as usize {
            if prev_in_cz[q] && !cur_in_cz[q] {
                let gate = match last_sq[q] {
                    // Second single-qubit gate overall is always T.
                    None => Sq::T,
                    Some(prev) => {
                        let options: [Sq; 2] = match prev {
                            Sq::T => [Sq::SqrtX, Sq::SqrtY],
                            Sq::SqrtX => [Sq::T, Sq::SqrtY],
                            Sq::SqrtY => [Sq::T, Sq::SqrtX],
                        };
                        *rng.choose(&options)
                    }
                };
                circuit.push(gate.gate(q as u32));
                last_sq[q] = Some(gate);
            }
        }
        // The CZ layer itself.
        for (a, b) in cz_pattern(spec.rows, spec.cols, t) {
            circuit.cz(a, b);
        }
        prev_in_cz = cur_in_cz;
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn eight_patterns_partition_all_edges() {
        for (rows, cols) in [(4u32, 4u32), (6, 5), (6, 6), (7, 6), (9, 5)] {
            let mut seen: HashSet<(u32, u32)> = HashSet::new();
            let mut total = 0;
            for t in 0..8 {
                for (a, b) in cz_pattern(rows, cols, t) {
                    assert!(
                        seen.insert((a, b)),
                        "edge ({a},{b}) repeated, grid {rows}x{cols}"
                    );
                    total += 1;
                }
            }
            let expect = (rows * (cols - 1) + (rows - 1) * cols) as usize;
            assert_eq!(total, expect, "grid {rows}x{cols} edge partition");
        }
    }

    #[test]
    fn each_pattern_is_a_matching() {
        for t in 0..8 {
            for (rows, cols) in [(6u32, 6u32), (9, 5)] {
                let mut used = HashSet::new();
                for (a, b) in cz_pattern(rows, cols, t) {
                    assert!(used.insert(a), "qubit {a} in two CZs, layer {t}");
                    assert!(used.insert(b), "qubit {b} in two CZs, layer {t}");
                }
            }
        }
    }

    #[test]
    fn edges_are_nearest_neighbour() {
        for t in 0..8 {
            for (a, b) in cz_pattern(5, 7, t) {
                let (ra, ca) = (a / 7, a % 7);
                let (rb, cb) = (b / 7, b % 7);
                let dist = ra.abs_diff(rb) + ca.abs_diff(cb);
                assert_eq!(dist, 1, "edge ({a},{b}) not NN");
            }
        }
    }

    #[test]
    fn cycle_structure_and_hadamards() {
        let spec = SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 10,
            seed: 1,
        };
        let c = supremacy_circuit(&spec);
        assert_eq!(c.n_cycles(), 11); // H layer + 10 CZ cycles
        assert_eq!(c.cycle(0).len(), 9);
        assert!(c.cycle(0).iter().all(|g| matches!(g, Gate::H(_))));
        // No single-qubit gates in cycle 1 (nothing did a CZ in cycle 0).
        assert!(c.cycle(1).iter().all(|g| matches!(g, Gate::CZ(_, _))));
    }

    #[test]
    fn second_single_qubit_gate_is_t() {
        let spec = SupremacySpec {
            rows: 4,
            cols: 4,
            depth: 25,
            seed: 7,
        };
        let c = supremacy_circuit(&spec);
        // For each qubit, the first non-H single-qubit gate must be T.
        let mut first_sq: Vec<Option<&Gate>> = vec![None; 16];
        for g in c.gates() {
            if g.arity() == 1 && !matches!(g, Gate::H(_)) {
                let q = g.qubits()[0] as usize;
                if first_sq[q].is_none() {
                    first_sq[q] = Some(g);
                }
            }
        }
        for (q, g) in first_sq.iter().enumerate() {
            if let Some(g) = g {
                assert!(
                    matches!(g, Gate::T(_)),
                    "qubit {q} first sq gate {}",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn no_repeated_single_qubit_gates() {
        let spec = SupremacySpec {
            rows: 5,
            cols: 5,
            depth: 30,
            seed: 3,
        };
        let c = supremacy_circuit(&spec);
        let mut last: Vec<Option<&'static str>> = vec![None; 25];
        for g in c.gates() {
            if g.arity() == 1 && !matches!(g, Gate::H(_)) {
                let q = g.qubits()[0] as usize;
                assert_ne!(last[q], Some(g.name()), "qubit {q} repeats {}", g.name());
                last[q] = Some(g.name());
            }
        }
    }

    #[test]
    fn single_qubit_gates_follow_prev_not_cur_rule() {
        let spec = SupremacySpec {
            rows: 4,
            cols: 5,
            depth: 20,
            seed: 11,
        };
        let c = supremacy_circuit(&spec);
        for cycle in 1..=spec.depth as usize {
            let t = (cycle as u32 - 1) % 8;
            let cur = pattern_qubits(4, 5, t);
            let prev = if cycle == 1 {
                vec![false; 20]
            } else {
                pattern_qubits(4, 5, (cycle as u32 - 2) % 8)
            };
            for g in c.cycle(cycle) {
                if g.arity() == 1 {
                    let q = g.qubits()[0] as usize;
                    assert!(prev[q] && !cur[q], "cycle {cycle}: bad 1q gate placement");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SupremacySpec {
            rows: 4,
            cols: 4,
            depth: 16,
            seed: 42,
        };
        let a = supremacy_circuit(&spec);
        let b = supremacy_circuit(&spec);
        assert_eq!(a.gates(), b.gates());
        let c = supremacy_circuit(&SupremacySpec { seed: 43, ..spec });
        assert_ne!(a.gates(), c.gates(), "different seeds differ");
    }

    #[test]
    fn gate_counts_depth25_match_paper_scale() {
        // Table 1 reports 369/447/528/569 gates for 30/36/42/45 qubits at
        // depth 25. The exact figure depends on the (unpublished) pattern
        // order; ours must land in the same ballpark (±12%) with exactly
        // n Hadamards and 3 rounds of all edges in CZs.
        for (rows, cols, paper_count) in [
            (6u32, 5u32, 369usize),
            (6, 6, 447),
            (7, 6, 528),
            (9, 5, 569),
        ] {
            let spec = SupremacySpec {
                rows,
                cols,
                depth: 25,
                seed: 0,
            };
            let c = supremacy_circuit(&spec);
            let n = (rows * cols) as usize;
            let h = c.count(|g| matches!(g, Gate::H(_)));
            let cz = c.count(|g| matches!(g, Gate::CZ(_, _)));
            assert_eq!(h, n);
            // 25 CZ cycles = 3 full 8-pattern rounds plus pattern 0.
            assert_eq!(
                cz,
                3 * spec.n_edges() + super::cz_pattern(rows, cols, 0).len()
            );
            let total = c.len();
            let lo = paper_count * 92 / 100;
            let hi = paper_count * 108 / 100;
            assert!(
                (lo..=hi).contains(&total),
                "{rows}x{cols}: {total} gates vs paper {paper_count}"
            );
        }
    }
}
