//! Circuit container: a flat gate list with clock-cycle annotations.
//!
//! Supremacy circuits are naturally organized in clock cycles (Fig. 1);
//! the per-gate baseline simulator of \[5\] executes cycle by cycle, while
//! our scheduler is free to reorder across cycles (§3.6.1). The container
//! keeps both views: `gates` in program order and `cycle_bounds` marking
//! where each clock cycle starts.

use crate::gate::Gate;

/// An n-qubit circuit.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    n_qubits: u32,
    gates: Vec<Gate>,
    /// `cycle_bounds[c]` = index of the first gate of clock cycle `c`.
    /// Always starts with 0 once any cycle is opened; a trailing implicit
    /// bound is `gates.len()`.
    cycle_bounds: Vec<usize>,
}

impl Circuit {
    pub fn new(n_qubits: u32) -> Self {
        assert!((1..=63).contains(&n_qubits), "unsupported qubit count");
        Self {
            n_qubits,
            gates: Vec::new(),
            cycle_bounds: Vec::new(),
        }
    }

    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Append a gate, validating operands.
    pub fn push(&mut self, g: Gate) -> &mut Self {
        let qs = g.qubits();
        for &q in &qs {
            assert!(
                q < self.n_qubits,
                "qubit {q} out of range (n={})",
                self.n_qubits
            );
        }
        if qs.len() == 2 {
            assert_ne!(qs[0], qs[1], "two-qubit gate needs distinct operands");
        }
        self.gates.push(g);
        self
    }

    /// Mark the start of a new clock cycle at the current position.
    pub fn begin_cycle(&mut self) -> &mut Self {
        self.cycle_bounds.push(self.gates.len());
        self
    }

    /// Number of annotated clock cycles (0 if the circuit was built
    /// without cycle marks).
    pub fn n_cycles(&self) -> usize {
        self.cycle_bounds.len()
    }

    /// Gate index range of clock cycle `c`.
    pub fn cycle_range(&self, c: usize) -> core::ops::Range<usize> {
        let start = self.cycle_bounds[c];
        let end = self
            .cycle_bounds
            .get(c + 1)
            .copied()
            .unwrap_or(self.gates.len());
        start..end
    }

    /// Gates of clock cycle `c`.
    pub fn cycle(&self, c: usize) -> &[Gate] {
        &self.gates[self.cycle_range(c)]
    }

    /// Builder sugar.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push(Gate::H(q))
    }
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.push(Gate::T(q))
    }
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push(Gate::X(q))
    }
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Z(q))
    }
    pub fn sqrt_x(&mut self, q: u32) -> &mut Self {
        self.push(Gate::SqrtX(q))
    }
    pub fn sqrt_y(&mut self, q: u32) -> &mut Self {
        self.push(Gate::SqrtY(q))
    }
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::CZ(a, b))
    }
    pub fn cnot(&mut self, control: u32, target: u32) -> &mut Self {
        self.push(Gate::CNot { target, control })
    }

    /// Count gates satisfying a predicate.
    pub fn count(&self, pred: impl Fn(&Gate) -> bool) -> usize {
        self.gates.iter().filter(|g| pred(g)).count()
    }

    /// Total FLOP to execute every gate individually with dense kernels on
    /// a 2^n state — the per-gate cost model used in speedup estimates.
    pub fn dense_flops(&self) -> u64 {
        self.gates
            .iter()
            .map(|g| qsim_util::flops::gate_flops(self.n_qubits, g.arity() as u32))
            .sum()
    }

    /// Relabel all qubits through a mapping (§3.6.2 qubit remapping).
    /// `map[old] = new`; must be a bijection on `0..n`.
    pub fn remapped(&self, map: &[u32]) -> Circuit {
        assert_eq!(map.len(), self.n_qubits as usize);
        let mut seen = vec![false; map.len()];
        for &m in map {
            assert!(
                (m as usize) < map.len() && !seen[m as usize],
                "invalid qubit map"
            );
            seen[m as usize] = true;
        }
        Circuit {
            n_qubits: self.n_qubits,
            gates: self
                .gates
                .iter()
                .map(|g| g.map_qubits(|q| map[q as usize]))
                .collect(),
            cycle_bounds: self.cycle_bounds.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_cycles() {
        let mut c = Circuit::new(3);
        c.begin_cycle().h(0).h(1).h(2);
        c.begin_cycle().cz(0, 1);
        c.begin_cycle().t(0).sqrt_x(1);
        assert_eq!(c.len(), 6);
        assert_eq!(c.n_cycles(), 3);
        assert_eq!(c.cycle(0).len(), 3);
        assert_eq!(c.cycle(1).len(), 1);
        assert_eq!(c.cycle(2).len(), 2);
        assert_eq!(c.cycle_range(2), 4..6);
        assert_eq!(c.count(|g| g.is_diagonal()), 2); // CZ + T
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_operand() {
        Circuit::new(2).h(2);
    }

    #[test]
    #[should_panic(expected = "distinct operands")]
    fn rejects_degenerate_two_qubit_gate() {
        Circuit::new(2).cz(1, 1);
    }

    #[test]
    fn remap_is_bijective_relabeling() {
        let mut c = Circuit::new(3);
        c.h(0).cz(1, 2);
        let r = c.remapped(&[2, 0, 1]);
        assert_eq!(r.gates()[0], Gate::H(2));
        assert_eq!(r.gates()[1], Gate::CZ(0, 1));
        assert_eq!(r.n_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid qubit map")]
    fn remap_rejects_non_bijection() {
        let mut c = Circuit::new(2);
        c.h(0);
        let _ = c.remapped(&[0, 0]);
    }

    #[test]
    fn dense_flops_counts_by_arity() {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1);
        let expect = qsim_util::flops::gate_flops(4, 1) + qsim_util::flops::gate_flops(4, 2);
        assert_eq!(c.dense_flops(), expect);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(5);
        assert!(c.is_empty());
        assert_eq!(c.n_cycles(), 0);
    }
}
