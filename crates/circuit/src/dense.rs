//! Dense reference simulator — the workspace's ground truth.
//!
//! Builds the explicit 2^n × 2^n embedded matrix of every gate (§2 of the
//! paper: Kronecker products with identities) and multiplies it into the
//! state. O(4^n) per gate, so usable only for n ≲ 12 — exactly its job:
//! every optimized execution path (kernels, fused clusters, scheduled
//! circuits, the distributed simulator, the baseline simulator) is tested
//! against this module.

use crate::circuit::Circuit;
use crate::gate::Gate;
use qsim_util::complex::Complex;
use qsim_util::matrix::GateMatrix;
use qsim_util::Real;

/// Hard cap: 2^12 × 2^12 dense matrices are already 256 MB of work per
/// gate; anything larger is a test-suite bug.
pub const MAX_DENSE_QUBITS: u32 = 12;

/// The all-zeros initial state |0…0⟩.
pub fn zero_state<T: Real>(n: u32) -> Vec<Complex<T>> {
    assert!(n <= MAX_DENSE_QUBITS + 20, "state too large");
    let mut v = vec![Complex::zero(); 1usize << n];
    v[0] = Complex::one();
    v
}

/// The uniform superposition 2^{−n/2}·(1,…,1)ᵀ — the state after the
/// initial Hadamard layer, which the paper's simulator starts from
/// directly (§3.6).
pub fn uniform_state<T: Real>(n: u32) -> Vec<Complex<T>> {
    let len = 1usize << n;
    let amp = T::ONE / T::from_usize(len).sqrt();
    vec![Complex::new(amp, T::ZERO); len]
}

/// Apply one gate via its dense embedded matrix.
pub fn apply_gate_dense<T: Real>(state: &mut [Complex<T>], n: u32, gate: &Gate) {
    assert!(
        n <= MAX_DENSE_QUBITS,
        "dense reference limited to {MAX_DENSE_QUBITS} qubits"
    );
    assert_eq!(state.len(), 1usize << n);
    let small: GateMatrix<T> = gate.matrix();
    let big = small.embed(n, &gate.qubits());
    let d = state.len();
    let mut out = vec![Complex::zero(); d];
    for (r, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (c, &s) in state.iter().enumerate() {
            let m = big.get(r, c);
            if m != Complex::zero() {
                acc += m * s;
            }
        }
        *o = acc;
    }
    state.copy_from_slice(&out);
}

/// Run a whole circuit from |0…0⟩ and return the final state.
pub fn simulate_dense<T: Real>(circuit: &Circuit) -> Vec<Complex<T>> {
    let n = circuit.n_qubits();
    let mut state = zero_state::<T>(n);
    for g in circuit.gates() {
        apply_gate_dense(&mut state, n, g);
    }
    state
}

/// Output probabilities |α_i|².
pub fn probabilities<T: Real>(state: &[Complex<T>]) -> Vec<T> {
    state.iter().map(|a| a.norm_sqr()).collect()
}

/// Shannon entropy of the output distribution in bits — the observable
/// the paper computes for the 36-qubit Edison run (§4.2.2).
pub fn entropy<T: Real>(state: &[Complex<T>]) -> T {
    let mut h = T::ZERO;
    for a in state {
        let p = a.norm_sqr();
        if p > T::ZERO {
            h -= p * p.log2();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_util::c64;

    #[test]
    fn zero_and_uniform_states() {
        let z = zero_state::<f64>(3);
        assert_eq!(z[0], c64::one());
        assert!(z[1..].iter().all(|&a| a == c64::zero()));
        let u = uniform_state::<f64>(3);
        let norm: f64 = u.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        assert!((u[5].re - 1.0 / 8f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = simulate_dense::<f64>(&c);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!((s[0] - c64::new(r, 0.0)).abs() < 1e-12);
        assert!((s[3] - c64::new(r, 0.0)).abs() < 1e-12);
        assert!(s[1].abs() < 1e-12 && s[2].abs() < 1e-12);
        // Entropy of a Bell state's computational distribution is 1 bit.
        assert!((entropy(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_layer_gives_uniform_state() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        let s = simulate_dense::<f64>(&c);
        let u = uniform_state::<f64>(4);
        assert!(qsim_util::complex::max_dist(&s, &u) < 1e-12);
    }

    #[test]
    fn ghz_probabilities() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let s = simulate_dense::<f64>(&c);
        let p = probabilities(&s);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!(p[1..7].iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn supremacy_circuit_preserves_norm_and_entangles() {
        let spec = SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 14,
            seed: 2,
        };
        let c = supremacy_circuit(&spec);
        let s = simulate_dense::<f64>(&c);
        let norm: f64 = s.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-10);
        // Deep random circuits approach Porter–Thomas: entropy close to
        // (n − 1/ln2·(1−γ)) ≈ n − 0.61 bits; far above a product state's.
        let h = entropy(&s);
        assert!(h > 7.0, "entropy {h} too low for a deep 9-qubit circuit");
        assert!(h <= 9.0 + 1e-9);
    }

    #[test]
    fn cz_phase_only_affects_11_component() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1);
        let s = simulate_dense::<f64>(&c);
        assert!((s[0].re - 0.5).abs() < 1e-12);
        assert!((s[1].re - 0.5).abs() < 1e-12);
        assert!((s[2].re - 0.5).abs() < 1e-12);
        assert!((s[3].re + 0.5).abs() < 1e-12);
    }

    #[test]
    fn x_half_twice_equals_x() {
        let mut c1 = Circuit::new(1);
        c1.sqrt_x(0).sqrt_x(0);
        let mut c2 = Circuit::new(1);
        c2.x(0);
        let a = simulate_dense::<f64>(&c1);
        let b = simulate_dense::<f64>(&c2);
        assert!(qsim_util::complex::max_dist(&a, &b) < 1e-12);
    }

    #[test]
    fn f32_reference_close_to_f64() {
        let spec = SupremacySpec {
            rows: 2,
            cols: 3,
            depth: 10,
            seed: 9,
        };
        let c = supremacy_circuit(&spec);
        let a = simulate_dense::<f64>(&c);
        let b = simulate_dense::<f32>(&c);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.re - y.re as f64).abs() < 1e-4);
            assert!((x.im - y.im as f64).abs() < 1e-4);
        }
    }
}
