//! Per-qubit dependency tracking.
//!
//! "Gates acting on the same qubit never commute for quantum supremacy
//! circuits by design … Nevertheless, we can reorder gates which act on
//! different qubits as they commute trivially." (§3.6.1). The dependency
//! structure of a circuit is therefore exactly the per-qubit program
//! order: gate `g` is *ready* when it is the earliest unexecuted gate on
//! every one of its qubits. [`DependencyTracker`] maintains that frontier
//! for the scheduler's greedy passes.

use crate::circuit::Circuit;

/// Tracks which gates are ready/executed under per-qubit ordering.
#[derive(Clone, Debug)]
pub struct DependencyTracker {
    /// Gate indices touching each qubit, in program order.
    chains: Vec<Vec<usize>>,
    /// Next unexecuted position within each qubit's chain.
    cursor: Vec<usize>,
    /// Qubits of each gate (cached).
    gate_qubits: Vec<Vec<u32>>,
    executed: Vec<bool>,
    n_executed: usize,
}

impl DependencyTracker {
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.n_qubits() as usize;
        let mut chains = vec![Vec::new(); n];
        let mut gate_qubits = Vec::with_capacity(circuit.len());
        for (gi, g) in circuit.gates().iter().enumerate() {
            let qs = g.qubits();
            for &q in &qs {
                chains[q as usize].push(gi);
            }
            gate_qubits.push(qs);
        }
        Self {
            cursor: vec![0; n],
            executed: vec![false; circuit.len()],
            n_executed: 0,
            chains,
            gate_qubits,
        }
    }

    /// Total number of gates.
    pub fn n_gates(&self) -> usize {
        self.executed.len()
    }

    /// Is gate `gi` at the front of all its qubits' chains?
    pub fn is_ready(&self, gi: usize) -> bool {
        !self.executed[gi]
            && self.gate_qubits[gi].iter().all(|&q| {
                let chain = &self.chains[q as usize];
                let cur = self.cursor[q as usize];
                cur < chain.len() && chain[cur] == gi
            })
    }

    /// Mark a ready gate as executed, advancing its qubits' cursors.
    /// Panics if the gate is not ready (scheduling bug).
    pub fn execute(&mut self, gi: usize) {
        assert!(self.is_ready(gi), "gate {gi} executed out of order");
        for &q in &self.gate_qubits[gi] {
            self.cursor[q as usize] += 1;
        }
        self.executed[gi] = true;
        self.n_executed += 1;
    }

    /// Has gate `gi` been executed?
    pub fn is_executed(&self, gi: usize) -> bool {
        self.executed[gi]
    }

    /// All gates executed?
    pub fn is_done(&self) -> bool {
        self.n_executed == self.executed.len()
    }

    pub fn n_remaining(&self) -> usize {
        self.executed.len() - self.n_executed
    }

    /// Current frontier: every ready gate, in program order.
    pub fn ready_gates(&self) -> Vec<usize> {
        // The frontier is a subset of the chain fronts; dedupe via scan.
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (q, chain) in self.chains.iter().enumerate() {
            if let Some(&gi) = chain.get(self.cursor[q]) {
                if seen.insert(gi) && self.is_ready(gi) {
                    out.push(gi);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Next unexecuted gate on qubit `q`, if any.
    pub fn next_on_qubit(&self, q: u32) -> Option<usize> {
        self.chains[q as usize]
            .get(self.cursor[q as usize])
            .copied()
    }

    /// The qubits of gate `gi` (cached accessor for schedulers).
    pub fn qubits_of(&self, gi: usize) -> &[u32] {
        &self.gate_qubits[gi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        // q0: H --- CZ(0,1) --- T
        // q1:       CZ(0,1) --- H
        // q2: X ---------------- CZ(1,2)? no: build explicit
        let mut c = Circuit::new(3);
        c.h(0); // 0
        c.x(2); // 1
        c.cz(0, 1); // 2
        c.t(0); // 3
        c.h(1); // 4
        c.cz(1, 2); // 5
        c
    }

    #[test]
    fn initial_frontier() {
        let t = DependencyTracker::new(&sample());
        // H(0) and X(2) are ready; CZ(0,1) waits on H(0) but q1 side is
        // free — still not ready because q0's front is H.
        assert_eq!(t.ready_gates(), vec![0, 1]);
        assert!(t.is_ready(0));
        assert!(!t.is_ready(2));
    }

    #[test]
    fn execution_unlocks_dependents() {
        let mut t = DependencyTracker::new(&sample());
        t.execute(0);
        assert!(t.is_ready(2), "CZ ready after H");
        t.execute(2);
        assert_eq!(t.ready_gates(), vec![1, 3, 4]);
        t.execute(4);
        // CZ(1,2) needs X(2) executed too.
        assert!(!t.is_ready(5));
        t.execute(1);
        assert!(t.is_ready(5));
        t.execute(5);
        t.execute(3);
        assert!(t.is_done());
        assert_eq!(t.n_remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_execution_panics() {
        let mut t = DependencyTracker::new(&sample());
        t.execute(2); // CZ before H(0)
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn double_execution_panics() {
        let mut t = DependencyTracker::new(&sample());
        t.execute(0);
        t.execute(0);
    }

    #[test]
    fn commuting_gates_any_order() {
        // Gates on disjoint qubits can execute in any order.
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        let mut t = DependencyTracker::new(&c);
        assert_eq!(t.ready_gates(), vec![0, 1, 2, 3]);
        t.execute(3);
        t.execute(0);
        t.execute(2);
        t.execute(1);
        assert!(t.is_done());
    }

    #[test]
    fn next_on_qubit_walks_chain() {
        let mut t = DependencyTracker::new(&sample());
        assert_eq!(t.next_on_qubit(0), Some(0));
        t.execute(0);
        assert_eq!(t.next_on_qubit(0), Some(2));
        assert_eq!(t.next_on_qubit(1), Some(2));
        assert_eq!(t.next_on_qubit(2), Some(1));
    }

    #[test]
    fn serialized_supremacy_order_is_valid() {
        // Executing any circuit in program order must always succeed.
        let c = crate::supremacy::supremacy_circuit(&crate::supremacy::SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 12,
            seed: 5,
        });
        let mut t = DependencyTracker::new(&c);
        for gi in 0..c.len() {
            t.execute(gi);
        }
        assert!(t.is_done());
    }
}
