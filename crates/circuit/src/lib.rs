//! # qsim-circuit
//!
//! Quantum-circuit intermediate representation and workloads:
//!
//! * [`gate`] — the gate set of quantum supremacy circuits (H, T, X^1/2,
//!   Y^1/2, CZ, …) plus generic rotations and arbitrary unitaries, each
//!   with its dense matrix and the structural properties the scheduler
//!   exploits (diagonality, permutation structure, §3.5).
//! * [`circuit`] — flat gate list with cycle (clock) annotations and a
//!   builder API.
//! * [`dag`] — per-qubit dependency chains; gates on disjoint qubits
//!   commute trivially (§3.6.1), so the dependency structure *is* the
//!   per-qubit program order.
//! * [`supremacy`] — the Fig. 1 generator for Google's low-depth random
//!   circuits on a 2-D nearest-neighbour grid.
//! * [`dense`] — a small dense reference simulator (explicit embedded
//!   matrices); the ground truth for every other execution path in the
//!   workspace.

pub mod algorithms;
pub mod circuit;
pub mod dag;
pub mod dense;
pub mod gate;
pub mod supremacy;

pub use circuit::Circuit;
pub use dag::DependencyTracker;
pub use gate::Gate;
pub use supremacy::{supremacy_circuit, SupremacySpec};
