//! The gate set.
//!
//! Matrix conventions follow §2 of the paper (and `qsim_util::matrix`):
//! little-endian operand order, so for two-operand gates the operand list
//! `[a, b]` maps `a` to index bit 0 and `b` to bit 1. CZ is symmetric; for
//! CNOT the operand order is `[target, control]`.
//!
//! The scheduler cares about three structural classes (§3.5):
//! * **diagonal** gates (T, T†, S, S†, Z, Rz, CZ, CPhase) — on global
//!   qubits they reduce to rank-conditional phases, no communication;
//! * **permutation** gates (X, CNOT) — on global qubits they reduce to a
//!   rank renumbering;
//! * everything else is **dense** and must act on local qubits.

use qsim_util::complex::Complex;
use qsim_util::matrix::GateMatrix;
use qsim_util::Real;

/// A quantum gate instance (operation + operand qubits).
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(u32),
    /// T = diag(1, e^{iπ/4}).
    T(u32),
    /// T† = diag(1, e^{−iπ/4}).
    Tdg(u32),
    /// Phase gate S = diag(1, i).
    S(u32),
    /// S† = diag(1, −i).
    Sdg(u32),
    /// Pauli-X (NOT).
    X(u32),
    /// Pauli-Y.
    Y(u32),
    /// Pauli-Z = diag(1, −1).
    Z(u32),
    /// X^{1/2} = ((1+i, 1−i), (1−i, 1+i))/2 — supremacy-circuit gate.
    SqrtX(u32),
    /// Y^{1/2} = ((1+i, −1−i), (1+i, 1+i))/2 — supremacy-circuit gate.
    SqrtY(u32),
    /// Z-rotation diag(1, e^{iθ}) (phase convention: R_z up to global
    /// phase).
    Rz(u32, f64),
    /// X-rotation cos(θ/2)·I − i·sin(θ/2)·X.
    Rx(u32, f64),
    /// Y-rotation cos(θ/2)·I − i·sin(θ/2)·Y.
    Ry(u32, f64),
    /// Controlled-Z (symmetric).
    CZ(u32, u32),
    /// Controlled-NOT; operand order `[target, control]`.
    CNot { target: u32, control: u32 },
    /// SWAP.
    Swap(u32, u32),
    /// Controlled phase diag(1,1,1,e^{iθ}) (symmetric).
    CPhase(u32, u32, f64),
    /// Doubly-controlled Z (symmetric in all three operands; diagonal).
    CCZ(u32, u32, u32),
    /// Toffoli (CCX); operand order `[target, control1, control2]`.
    Toffoli { target: u32, c1: u32, c2: u32 },
    /// Arbitrary dense single-qubit unitary.
    U1(u32, Box<GateMatrix<f64>>),
    /// Arbitrary dense two-qubit unitary, operands `[a, b]` little-endian.
    U2(u32, u32, Box<GateMatrix<f64>>),
}

impl Gate {
    /// Operand qubits, in matrix (little-endian) order.
    pub fn qubits(&self) -> Vec<u32> {
        use Gate::*;
        match *self {
            H(q)
            | T(q)
            | Tdg(q)
            | S(q)
            | Sdg(q)
            | X(q)
            | Y(q)
            | Z(q)
            | SqrtX(q)
            | SqrtY(q)
            | Rz(q, _)
            | Rx(q, _)
            | Ry(q, _)
            | U1(q, _) => vec![q],
            CZ(a, b) | Swap(a, b) | CPhase(a, b, _) | U2(a, b, _) => vec![a, b],
            CNot { target, control } => vec![target, control],
            CCZ(a, b, c) => vec![a, b, c],
            Toffoli { target, c1, c2 } => vec![target, c1, c2],
        }
    }

    /// Number of operand qubits.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// Diagonal in the computational basis? Diagonal gates on global
    /// qubits need no communication (§3.5).
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        match self {
            T(_)
            | Tdg(_)
            | S(_)
            | Sdg(_)
            | Z(_)
            | Rz(_, _)
            | CZ(_, _)
            | CPhase(_, _, _)
            | CCZ(_, _, _) => true,
            U1(_, m) => m.as_diagonal().is_some(),
            U2(_, _, m) => m.as_diagonal().is_some(),
            _ => false,
        }
    }

    /// A basis-state permutation (possibly with phases on the *local*
    /// part)? X and CNOT on global qubits reduce to rank renumbering
    /// (§3.5).
    pub fn is_permutation(&self) -> bool {
        matches!(
            self,
            Gate::X(_) | Gate::CNot { .. } | Gate::Swap(_, _) | Gate::Toffoli { .. }
        )
    }

    /// Dense (neither diagonal nor a permutation): must be executed on
    /// local qubits.
    pub fn is_dense(&self) -> bool {
        !self.is_diagonal() && !self.is_permutation()
    }

    /// Short mnemonic for debug output.
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            H(_) => "H",
            T(_) => "T",
            Tdg(_) => "Tdg",
            S(_) => "S",
            Sdg(_) => "Sdg",
            X(_) => "X",
            Y(_) => "Y",
            Z(_) => "Z",
            SqrtX(_) => "X^1/2",
            SqrtY(_) => "Y^1/2",
            Rz(_, _) => "Rz",
            Rx(_, _) => "Rx",
            Ry(_, _) => "Ry",
            CZ(_, _) => "CZ",
            CNot { .. } => "CNOT",
            Swap(_, _) => "SWAP",
            CPhase(_, _, _) => "CPhase",
            CCZ(_, _, _) => "CCZ",
            Toffoli { .. } => "Toffoli",
            U1(_, _) => "U1",
            U2(_, _, _) => "U2",
        }
    }

    /// Dense matrix in the operand order returned by [`Gate::qubits`].
    pub fn matrix<P: Real>(&self) -> GateMatrix<P> {
        use Gate::*;
        let h = P::HALF;
        let s = P::frac_1_sqrt_2();
        let z = Complex::<P>::zero;
        let o = Complex::<P>::one;
        let m1 = |e: [Complex<P>; 4]| GateMatrix::from_rows(1, e.to_vec());
        match *self {
            H(_) => m1([
                Complex::new(s, P::ZERO),
                Complex::new(s, P::ZERO),
                Complex::new(s, P::ZERO),
                Complex::new(-s, P::ZERO),
            ]),
            T(_) => diag1(Complex::from_polar(P::ONE, P::pi() * P::from_f64(0.25))),
            Tdg(_) => diag1(Complex::from_polar(P::ONE, -P::pi() * P::from_f64(0.25))),
            S(_) => diag1(Complex::i()),
            Sdg(_) => diag1(-Complex::i()),
            Z(_) => diag1(-o()),
            Rz(_, theta) => diag1(Complex::from_polar(P::ONE, P::from_f64(theta))),
            X(_) => m1([z(), o(), o(), z()]),
            Y(_) => m1([z(), -Complex::i(), Complex::i(), z()]),
            SqrtX(_) => m1([
                Complex::new(h, h),
                Complex::new(h, -h),
                Complex::new(h, -h),
                Complex::new(h, h),
            ]),
            SqrtY(_) => m1([
                Complex::new(h, h),
                Complex::new(-h, -h),
                Complex::new(h, h),
                Complex::new(h, h),
            ]),
            Rx(_, theta) => {
                let (c, sn) = half_angle::<P>(theta);
                m1([
                    Complex::new(c, P::ZERO),
                    Complex::new(P::ZERO, -sn),
                    Complex::new(P::ZERO, -sn),
                    Complex::new(c, P::ZERO),
                ])
            }
            Ry(_, theta) => {
                let (c, sn) = half_angle::<P>(theta);
                m1([
                    Complex::new(c, P::ZERO),
                    Complex::new(-sn, P::ZERO),
                    Complex::new(sn, P::ZERO),
                    Complex::new(c, P::ZERO),
                ])
            }
            CZ(_, _) => {
                let mut m = GateMatrix::identity(2);
                m.set(3, 3, -o());
                m
            }
            CPhase(_, _, theta) => {
                let mut m = GateMatrix::identity(2);
                m.set(3, 3, Complex::from_polar(P::ONE, P::from_f64(theta)));
                m
            }
            CNot { .. } => {
                // Operands [target, control]: flip bit 0 when bit 1 set.
                let mut m = GateMatrix::identity(2);
                m.set(2, 2, z());
                m.set(3, 3, z());
                m.set(2, 3, o());
                m.set(3, 2, o());
                m
            }
            Swap(_, _) => {
                let mut m = GateMatrix::identity(2);
                m.set(1, 1, z());
                m.set(2, 2, z());
                m.set(1, 2, o());
                m.set(2, 1, o());
                m
            }
            CCZ(_, _, _) => {
                let mut m = GateMatrix::identity(3);
                m.set(7, 7, -o());
                m
            }
            Toffoli { .. } => {
                // Operands [target, c1, c2]: flip bit 0 when bits 1,2 set.
                let mut m = GateMatrix::identity(3);
                m.set(6, 6, z());
                m.set(7, 7, z());
                m.set(6, 7, o());
                m.set(7, 6, o());
                m
            }
            U1(_, ref m) => m.convert(),
            U2(_, _, ref m) => m.convert(),
        }
    }

    /// Remap operand qubits through `f` (used by qubit mapping, §3.6.2).
    pub fn map_qubits(&self, f: impl Fn(u32) -> u32) -> Gate {
        use Gate::*;
        match self.clone() {
            H(q) => H(f(q)),
            T(q) => T(f(q)),
            Tdg(q) => Tdg(f(q)),
            S(q) => S(f(q)),
            Sdg(q) => Sdg(f(q)),
            X(q) => X(f(q)),
            Y(q) => Y(f(q)),
            Z(q) => Z(f(q)),
            SqrtX(q) => SqrtX(f(q)),
            SqrtY(q) => SqrtY(f(q)),
            Rz(q, t) => Rz(f(q), t),
            Rx(q, t) => Rx(f(q), t),
            Ry(q, t) => Ry(f(q), t),
            CZ(a, b) => CZ(f(a), f(b)),
            CNot { target, control } => CNot {
                target: f(target),
                control: f(control),
            },
            Swap(a, b) => Swap(f(a), f(b)),
            CPhase(a, b, t) => CPhase(f(a), f(b), t),
            CCZ(a, b, c2) => CCZ(f(a), f(b), f(c2)),
            Toffoli { target, c1, c2 } => Toffoli {
                target: f(target),
                c1: f(c1),
                c2: f(c2),
            },
            U1(q, m) => U1(f(q), m),
            U2(a, b, m) => U2(f(a), f(b), m),
        }
    }
}

fn diag1<T: Real>(phase: Complex<T>) -> GateMatrix<T> {
    let mut m = GateMatrix::identity(1);
    m.set(1, 1, phase);
    m
}

fn half_angle<T: Real>(theta: f64) -> (T, T) {
    let t = T::from_f64(theta) * T::HALF;
    (t.cos(), t.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_util::c64;

    fn all_test_gates() -> Vec<Gate> {
        vec![
            Gate::H(0),
            Gate::T(1),
            Gate::Tdg(0),
            Gate::S(2),
            Gate::Sdg(0),
            Gate::X(1),
            Gate::Y(0),
            Gate::Z(3),
            Gate::SqrtX(0),
            Gate::SqrtY(1),
            Gate::Rz(0, 0.7),
            Gate::Rx(0, 1.1),
            Gate::Ry(0, -0.4),
            Gate::CZ(0, 1),
            Gate::CNot {
                target: 0,
                control: 1,
            },
            Gate::Swap(0, 2),
            Gate::CPhase(1, 2, 0.3),
            Gate::CCZ(0, 1, 2),
            Gate::Toffoli {
                target: 0,
                c1: 1,
                c2: 2,
            },
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_test_gates() {
            let m: GateMatrix<f64> = g.matrix();
            assert!(
                m.unitarity_residual() < 1e-12,
                "{} not unitary: {}",
                g.name(),
                m.unitarity_residual()
            );
            assert_eq!(m.k() as usize, g.arity(), "{}", g.name());
        }
    }

    #[test]
    fn diagonality_classification_matches_matrices() {
        for g in all_test_gates() {
            let m: GateMatrix<f64> = g.matrix();
            assert_eq!(
                g.is_diagonal(),
                m.as_diagonal().is_some(),
                "{} diagonality mismatch",
                g.name()
            );
        }
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let sx: GateMatrix<f64> = Gate::SqrtX(0).matrix();
        let xx = sx.matmul(&sx);
        let x: GateMatrix<f64> = Gate::X(0).matrix();
        assert!(qsim_util::complex::max_dist(xx.entries(), x.entries()) < 1e-12);

        let sy: GateMatrix<f64> = Gate::SqrtY(0).matrix();
        let yy = sy.matmul(&sy);
        let y: GateMatrix<f64> = Gate::Y(0).matrix();
        // Y^{1/2}² = Y up to global phase; check |entries| and phase ratio.
        let ratio = yy.get(1, 0) / y.get(1, 0);
        for r in 0..2 {
            for c in 0..2 {
                let lhs = yy.get(r, c);
                let rhs = y.get(r, c) * ratio;
                assert!((lhs - rhs).abs() < 1e-12, "Y^1/2 squared mismatch");
            }
        }
        assert!((ratio.abs() - 1.0).abs() < 1e-12, "phase must be unit");
    }

    #[test]
    fn t_eighth_power_is_identity() {
        let t: GateMatrix<f64> = Gate::T(0).matrix();
        let mut p = GateMatrix::identity(1);
        for _ in 0..8 {
            p = p.matmul(&t);
        }
        assert!(
            qsim_util::complex::max_dist(p.entries(), GateMatrix::identity(1).entries()) < 1e-12
        );
    }

    #[test]
    fn s_equals_t_squared() {
        let t: GateMatrix<f64> = Gate::T(0).matrix();
        let s: GateMatrix<f64> = Gate::S(0).matrix();
        assert!(qsim_util::complex::max_dist(t.matmul(&t).entries(), s.entries()) < 1e-12);
    }

    #[test]
    fn cnot_operand_convention() {
        let m: GateMatrix<f64> = Gate::CNot {
            target: 5,
            control: 9,
        }
        .matrix();
        // qubits() = [target, control] = [5, 9]; bit0 = target, bit1 = control.
        assert_eq!(
            Gate::CNot {
                target: 5,
                control: 9
            }
            .qubits(),
            vec![5, 9]
        );
        // |control=1, target=0> = index 2 maps to index 3.
        assert_eq!(m.get(3, 2), c64::one());
        assert_eq!(m.get(0, 0), c64::one());
        assert_eq!(m.get(1, 1), c64::one());
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let m: GateMatrix<f64> = Gate::Rz(0, 1.5).matrix();
        let d = m.as_diagonal().unwrap();
        assert_eq!(d[0], c64::one());
        assert!((d[1] - c64::from_polar(1.0, 1.5)).abs() < 1e-15);
    }

    #[test]
    fn permutation_classification() {
        assert!(Gate::X(0).is_permutation());
        assert!(Gate::CNot {
            target: 0,
            control: 1
        }
        .is_permutation());
        assert!(!Gate::H(0).is_permutation());
        assert!(Gate::H(0).is_dense());
        assert!(!Gate::T(0).is_dense());
        assert!(!Gate::X(0).is_dense());
        assert!(Gate::SqrtX(0).is_dense());
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::CNot {
            target: 1,
            control: 4,
        };
        let mapped = g.map_qubits(|q| q + 10);
        assert_eq!(mapped.qubits(), vec![11, 14]);
        assert_eq!(mapped.name(), "CNOT");
        // Matrix is label-independent.
        let a: GateMatrix<f64> = g.matrix();
        let b: GateMatrix<f64> = mapped.matrix();
        assert_eq!(a, b);
    }

    #[test]
    fn ccz_and_toffoli_semantics() {
        let ccz: GateMatrix<f64> = Gate::CCZ(0, 1, 2).matrix();
        let d = ccz.as_diagonal().expect("CCZ is diagonal");
        assert_eq!(d[7], -c64::one());
        assert!(d[..7].iter().all(|&x| x == c64::one()));

        let tof: GateMatrix<f64> = Gate::Toffoli {
            target: 0,
            c1: 1,
            c2: 2,
        }
        .matrix();
        // |c2 c1 t> = |110> (idx 6) -> |111> (idx 7).
        assert_eq!(tof.get(7, 6), c64::one());
        assert_eq!(tof.get(6, 7), c64::one());
        assert_eq!(tof.get(5, 5), c64::one());
        assert!(tof.as_diagonal().is_none());
        assert!(Gate::Toffoli {
            target: 0,
            c1: 1,
            c2: 2
        }
        .is_permutation());
        // H(t)·CCZ·H(t) == Toffoli.
        let h_on_t: GateMatrix<f64> = Gate::H(0).matrix();
        let h3 = h_on_t.embed(3, &[0]);
        let composed = h3.matmul(&ccz).matmul(&h3);
        assert!(qsim_util::complex::max_dist(composed.entries(), tof.entries()) < 1e-12);
    }

    #[test]
    fn f32_matrices_match_f64() {
        for g in all_test_gates() {
            let a: GateMatrix<f64> = g.matrix();
            let b: GateMatrix<f32> = g.matrix();
            for i in 0..a.dim() {
                for j in 0..a.dim() {
                    assert!(
                        (a.get(i, j).re - b.get(i, j).re as f64).abs() < 1e-6
                            && (a.get(i, j).im - b.get(i, j).im as f64).abs() < 1e-6,
                        "{} precision mismatch",
                        g.name()
                    );
                }
            }
        }
    }
}
