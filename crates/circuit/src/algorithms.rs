//! Textbook circuit constructions used by examples, tests and the
//! emulation comparison.
//!
//! The paper contrasts gate-level simulation with *emulation* — classical
//! shortcuts for operations whose action is known in advance, its example
//! being "the quantum Fourier transform, which can be emulated by
//! applying a fast Fourier transform to the state vector" (§1, ref \[7\]).
//! [`qft`] provides the gate-level circuit; `qsim_core::emulate` provides
//! the FFT shortcut; supremacy circuits, by design, admit no such
//! shortcut.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// The quantum Fourier transform on `n` qubits, little-endian:
/// `QFT|x⟩ = 2^{−n/2} Σ_k e^{2πi·xk/2^n} |k⟩`.
///
/// Standard construction: per qubit a Hadamard followed by controlled
/// phases of angle π/2^d, then a bit-reversal swap network.
pub fn qft(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    // Build in big-endian order, then reverse with swaps.
    for j in (0..n).rev() {
        c.push(Gate::H(j));
        for d in 1..=j {
            let angle = std::f64::consts::PI / (1u64 << d) as f64;
            c.push(Gate::CPhase(j, j - d, angle));
        }
    }
    for q in 0..n / 2 {
        c.push(Gate::Swap(q, n - 1 - q));
    }
    c
}

/// GHZ preparation: H on qubit 0 then a CNOT ladder.
pub fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cnot(q - 1, q);
    }
    c
}

/// A brickwork random-entangling circuit (alternating CZ layers with
/// random single-qubit gates) on a 1-D chain — a lighter workload than
/// the 2-D supremacy circuits for quick tests.
pub fn brickwork_1d(n: u32, layers: u32, seed: u64) -> Circuit {
    let mut rng = qsim_util::Xoshiro256::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    c.begin_cycle();
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..layers {
        c.begin_cycle();
        for q in 0..n {
            match rng.next_below(3) {
                0 => c.push(Gate::T(q)),
                1 => c.push(Gate::SqrtX(q)),
                _ => c.push(Gate::SqrtY(q)),
            };
        }
        let start = layer % 2;
        let mut q = start;
        while q + 1 < n {
            c.cz(q, q + 1);
            q += 2;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{simulate_dense, zero_state};
    use qsim_util::c64;

    /// Direct DFT of a basis state |x⟩ for cross-checking the QFT.
    fn dft_of_basis(n: u32, x: usize) -> Vec<c64> {
        let len = 1usize << n;
        let norm = 1.0 / (len as f64).sqrt();
        (0..len)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * (x as f64) * (k as f64) / len as f64;
                c64::from_polar(norm, theta)
            })
            .collect()
    }

    #[test]
    fn qft_matches_dft_on_basis_states() {
        for n in [1u32, 2, 3, 4] {
            for x in [0usize, 1, (1usize << n) - 1, (1usize << n) / 2] {
                let mut init = zero_state::<f64>(n);
                init[0] = c64::zero();
                init[x] = c64::one();
                // Run the QFT circuit on |x⟩ via the dense reference.
                let circuit = qft(n);
                let mut state = init;
                for g in circuit.gates() {
                    crate::dense::apply_gate_dense(&mut state, n, g);
                }
                let expect = dft_of_basis(n, x);
                assert!(
                    qsim_util::complex::max_dist(&state, &expect) < 1e-12,
                    "n={n} x={x}"
                );
            }
        }
    }

    #[test]
    fn qft_gate_count() {
        // n H gates + n(n−1)/2 controlled phases + ⌊n/2⌋ swaps.
        let c = qft(6);
        assert_eq!(c.len() as u32, 6 + 15 + 3);
    }

    #[test]
    fn ghz_state_shape() {
        let s = simulate_dense::<f64>(&ghz(4));
        let r = 0.5f64.sqrt();
        assert!((s[0].abs() - r).abs() < 1e-12);
        assert!((s[15].abs() - r).abs() < 1e-12);
        assert!(s[1..15].iter().all(|a| a.abs() < 1e-12));
    }

    #[test]
    fn brickwork_preserves_norm_and_entangles() {
        let c = brickwork_1d(8, 12, 3);
        let s = simulate_dense::<f64>(&c);
        let norm: f64 = s.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-10);
        let h: f64 = s
            .iter()
            .map(|a| {
                let p = a.norm_sqr();
                if p > 0.0 {
                    -p * p.log2()
                } else {
                    0.0
                }
            })
            .sum();
        assert!(h > 5.0, "brickwork entropy {h}");
    }
}
