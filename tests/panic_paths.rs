//! Regressions for the panic-path sweep: a checkpoint IO failure must
//! surface as a typed [`SimError`] from the `try_*` entry points, and
//! the infallible `run` wrappers must flush the armed flight recorder
//! *before* panicking — a run may die, but never silently, and never
//! without a `FLIGHT.json` when a recorder is armed.
//!
//! Everything lives in one `#[test]` because the armed recorder is
//! process-global state: parallel test threads would race on it.

use std::path::PathBuf;

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::single::{SingleCheckpoint, SingleNodeSimulator};
use qsim45::core::{DistConfig, DistSimulator, SimError};
use qsim45::kernels::KernelConfig;
use qsim45::ooc::{CrashPoint, OocCheckpoint, OocConfig, OocSimulator, ScratchDir};
use qsim45::sched::{plan, SchedulerConfig};
use qsim45::telemetry::{recorder, FlightRecorder, Telemetry};

fn workload() -> qsim45::circuit::Circuit {
    supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 3,
        depth: 8,
        seed: 3,
    })
}

/// A path that exists and is a *file*, so `create_dir_all` on it fails —
/// the cheapest portable stand-in for a dead checkpoint disk.
fn dead_checkpoint_dir(scratch: &ScratchDir, tag: &str) -> PathBuf {
    std::fs::create_dir_all(scratch.path()).unwrap();
    let p = scratch.path().join(tag);
    std::fs::write(&p, b"not a directory").unwrap();
    p
}

#[test]
fn checkpoint_io_failures_are_typed_and_flight_recorded() {
    let c = workload();
    let scratch = ScratchDir::new("panic_paths");

    // 1. Typed surface: the single-node try path reports a checkpoint
    // IO failure as `SimError::Checkpoint`, not a panic.
    let mut cp = SingleCheckpoint::new(dead_checkpoint_dir(&scratch, "single"));
    cp.resume = false;
    let sim = SingleNodeSimulator {
        kernel: KernelConfig::sequential(),
        checkpoint: Some(cp),
        ..Default::default()
    };
    match sim.try_run(&c) {
        Err(SimError::Checkpoint(m)) => assert!(m.contains("single"), "path lost: {m}"),
        Err(e) => panic!("expected Checkpoint error, got {e}"),
        Ok(_) => panic!("a file for a checkpoint dir must fail"),
    }

    // 2. Same for the distributed try path.
    let dist = DistSimulator::new(DistConfig {
        n_ranks: 4,
        kernel: KernelConfig::sequential(),
        checkpoint_dir: Some(dead_checkpoint_dir(&scratch, "dist")),
        ..Default::default()
    });
    let (exec, uniform) = qsim45::core::single::strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::distributed(c.n_qubits() - 2, 4));
    match dist.try_run(&exec, &schedule, uniform) {
        Err(SimError::Checkpoint(_)) => {}
        Err(e) => panic!("expected Checkpoint error, got {e}"),
        Ok(_) => panic!("a file for a checkpoint dir must fail"),
    }

    // 3. The OOC try path normalizes its io-flavored failures: a dead
    // store directory is `SimError::Io`, an injected crash is the same
    // typed `InjectedStop` the other engines return.
    let mut ooc = OocSimulator::<f64>::sequential();
    match ooc.try_run(&dead_checkpoint_dir(&scratch, "ooc"), &schedule, uniform) {
        Err(SimError::Io(_)) => {}
        Err(e) => panic!("expected Io error, got {e}"),
        Ok(_) => panic!("a file for a chunk store must fail"),
    }
    let mut ooc = OocSimulator::<f64>::new(OocConfig {
        checkpoint: Some(OocCheckpoint {
            resume: false,
            crash: Some((0, CrashPoint::AfterCommit)),
        }),
        ..OocConfig::sequential()
    });
    let store = scratch.path().join("ooc_store");
    match ooc.try_run(&store, &schedule, uniform) {
        Err(SimError::InjectedStop { unit }) => assert_eq!(unit, 1),
        Err(e) => panic!("expected InjectedStop, got {e}"),
        Ok(_) => panic!("injected crash must fire"),
    }

    // 4. The infallible `run` wrapper: panics on the same failure, but
    // only after flushing the armed flight recorder.
    let rec = FlightRecorder::new(Telemetry::enabled(), scratch.path().join("flight_single"));
    recorder::arm_process(&rec);
    let mut cp = SingleCheckpoint::new(dead_checkpoint_dir(&scratch, "single_panic"));
    cp.resume = false;
    let sim = SingleNodeSimulator {
        kernel: KernelConfig::sequential(),
        checkpoint: Some(cp),
        ..Default::default()
    };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(&c)));
    assert!(caught.is_err(), "run() must still panic");
    assert!(
        rec.path().exists(),
        "abort must write FLIGHT.json before dying"
    );
    recorder::disarm_process();

    // 5. And the distributed wrapper does the same.
    let rec = FlightRecorder::new(Telemetry::enabled(), scratch.path().join("flight_dist"));
    recorder::arm_process(&rec);
    let dist = DistSimulator::new(DistConfig {
        n_ranks: 4,
        kernel: KernelConfig::sequential(),
        checkpoint_dir: Some(dead_checkpoint_dir(&scratch, "dist_panic")),
        ..Default::default()
    });
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dist.run(&exec, &schedule, uniform)
    }));
    assert!(caught.is_err(), "run() must still panic");
    assert!(
        rec.path().exists(),
        "abort must write FLIGHT.json before dying"
    );
    recorder::disarm_process();
}
