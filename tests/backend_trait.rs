//! Conformance suite for the unified [`Backend`] trait: one generic
//! harness drives every engine — single-node, distributed, out-of-core —
//! through the same plan → seed → run → kill → resume sequence, at both
//! precisions. This is the contract a fourth backend must satisfy to
//! plug into the CLI (DESIGN.md §16): plan once, run bit-exactly with
//! or without checkpointing, die with a typed `InjectedStop` at the
//! requested unit, and resume to the bit-exact uninterrupted state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::circuit::Circuit;
use qsim45::core::{
    Backend, DistBackend, DistConfig, DistSimulator, SimError, SingleBackend, SingleNodeSimulator,
};
use qsim45::kernels::{KernelConfig, SweepDispatch};
use qsim45::ooc::{OocBackend, OocConfig, OocSimulator};
use qsim45::telemetry::Telemetry;
use qsim45::util::complex::max_dist;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let id = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("qsim_backend_{tag}_{}_{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn workload() -> Circuit {
    supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 20,
        seed: 77,
    })
}

/// 2^4 ranks / chunks: small enough to thread cheaply, enough global
/// qubits that the schedule needs at least one swap — so every backend
/// has a genuine mid-run checkpoint unit to kill at.
const RANKS: usize = 16;

/// Every [`Backend`] implementation in the workspace, built over the
/// same telemetry handle with sequential kernels (determinism across
/// repeated runs is part of what the harness asserts). The single-node
/// engine gets a small `kmax` so clustering leaves it more than one
/// stage (its checkpoint unit) on this workload.
fn backends<R: SweepDispatch>(t: &Telemetry) -> Vec<Box<dyn Backend<R>>> {
    vec![
        Box::new(SingleBackend::new(SingleNodeSimulator {
            kernel: KernelConfig::sequential(),
            kmax: 3,
            telemetry: t.clone(),
            ..Default::default()
        })),
        Box::new(DistBackend::new(DistSimulator::new(DistConfig {
            n_ranks: RANKS,
            kernel: KernelConfig::sequential(),
            telemetry: t.clone(),
            ..Default::default()
        }))),
        Box::new(OocBackend::new(
            OocSimulator::<R>::new(OocConfig {
                telemetry: t.clone(),
                ..OocConfig::sequential()
            }),
            RANKS,
        )),
    ]
}

/// The shared conformance pass: replaces the per-engine copies that
/// used to live in `tests/backends.rs` and the engine-specific halves
/// of the checkpoint suites.
fn conformance<R: SweepDispatch>(norm_tol: f64) {
    let c = workload();
    let t = Telemetry::enabled();
    for mut b in backends::<R>(&t) {
        let name = b.name();

        // Plan: a valid schedule with a positive unit count. Swapful
        // plans (dist, ooc) must expose more than one checkpoint unit
        // so the kill below lands strictly mid-run; a single-node
        // schedule is one swap-free stage, so its unit is the whole
        // run and the kill fires after the final stage instead.
        let plan = b.plan(&c).expect(name);
        assert!(plan.total_units >= 1, "{name}: empty plan");
        if name != "single" {
            assert!(
                plan.total_units >= 2,
                "{name}: want >= 2 checkpoint units, got {}",
                plan.total_units
            );
        }
        plan.schedule.verify(&plan.exec);

        // Progress seeding: the cost-model prior must land in the live
        // progress engine before any unit executes.
        b.seed_progress(&plan);
        let snap = t.progress().expect("enabled telemetry").snapshot();
        assert!(
            snap.phases.iter().any(|p| p.predicted_seconds > 0.0),
            "{name}: seed_progress left no cost-model prior"
        );

        // Plain gathered run: normalized state, stats tagged with the
        // engine that produced them.
        b.gather_state(true);
        let out = b.run(&plan).expect(name);
        assert_eq!(out.stats.engine(), name);
        assert!(
            (out.norm - 1.0).abs() < norm_tol,
            "{name}: norm {}",
            out.norm
        );
        let plain = out.state.expect("gathered state");
        assert_eq!(plain.len(), 1usize << c.n_qubits());

        // Checkpointed uninterrupted run: checkpointing must be bitwise
        // invisible to the physics.
        let dir = tmpdir(&format!("{name}_base"));
        b.checkpoint(&dir);
        let base = b.run(&plan).expect(name).state.expect("gathered state");
        assert_eq!(
            max_dist(&base, &plain).to_f64(),
            0.0,
            "{name}: checkpointed run diverged from the plain run"
        );
        let _ = std::fs::remove_dir_all(&dir);

        // Kill mid-run: a typed InjectedStop naming exactly the unit
        // count that is durable in the checkpoint directory...
        let dir = tmpdir(&format!("{name}_kill"));
        b.checkpoint(&dir);
        let stop = (plan.total_units / 2).max(1);
        match b.run_to_stage(&plan, Some(stop)) {
            Err(SimError::InjectedStop { unit }) => {
                assert_eq!(unit, stop, "{name}: stop landed on the wrong unit")
            }
            Err(e) => panic!("{name}: expected InjectedStop, got {e}"),
            Ok(_) => panic!("{name}: kill at unit {stop} never fired"),
        }

        // ...and resume replays the identical tail: bit-exact.
        b.resume(&dir);
        let resumed = b.run(&plan).expect(name).state.expect("gathered state");
        assert_eq!(
            max_dist(&resumed, &plain).to_f64(),
            0.0,
            "{name}: kill at {stop}/{} + resume diverged",
            plan.total_units
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn every_backend_conforms_at_f64() {
    conformance::<f64>(1e-9);
}

#[test]
fn every_backend_conforms_at_f32() {
    conformance::<f32>(1e-4);
}

#[test]
fn backends_agree_with_each_other_through_the_trait() {
    // The equivalence half of the old per-engine suite, restated once
    // over the trait: every backend's gathered state against the first.
    let c = workload();
    let t = Telemetry::default();
    let mut states = Vec::new();
    for mut b in backends::<f64>(&t) {
        b.gather_state(true);
        let plan = b.plan(&c).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let out = b.run(&plan).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        states.push((b.name(), out.state.expect("gathered state")));
    }
    let (ref_name, reference) = &states[0];
    for (name, state) in &states[1..] {
        let d = max_dist(state, reference);
        assert!(d < 1e-9, "{name} vs {ref_name}: max dist {d:e}");
    }
}

#[test]
fn a_stop_point_requires_a_checkpoint_directory() {
    // Killing a run that has nowhere to persist its progress would lose
    // the state: every backend must refuse up front with a typed error,
    // not run-and-discard.
    let c = workload();
    let t = Telemetry::default();
    for mut b in backends::<f64>(&t) {
        let name = b.name();
        let plan = b.plan(&c).expect(name);
        match b.run_to_stage(&plan, Some(1)) {
            Err(SimError::Checkpoint(_)) => {}
            Err(e) => panic!("{name}: expected Checkpoint error, got {e}"),
            Ok(_) => panic!("{name}: stop without a checkpoint dir must be rejected"),
        }
    }
}

#[test]
fn resume_rejects_cross_precision_checkpoints_through_the_trait() {
    // An f64 checkpoint picked up by an f32 backend would reinterpret
    // the raw amplitude bytes: the manifest's precision field must turn
    // this into a typed rejection on every engine.
    let c = workload();
    let t = Telemetry::default();
    for (mut b64, mut b32) in backends::<f64>(&t).into_iter().zip(backends::<f32>(&t)) {
        let name = b64.name();
        let dir = tmpdir(&format!("{name}_xprec"));
        b64.checkpoint(&dir);
        let plan = b64.plan(&c).expect(name);
        let stop = (plan.total_units / 2).max(1);
        match b64.run_to_stage(&plan, Some(stop)) {
            Err(SimError::InjectedStop { .. }) => {}
            other => panic!("{name}: expected InjectedStop, got {:?}", other.map(|_| ())),
        }

        b32.resume(&dir);
        let plan32 = b32.plan(&c).expect(name);
        match b32.run(&plan32) {
            Err(SimError::Checkpoint(m)) => {
                assert!(m.contains("precision"), "{name}: unhelpful message: {m}")
            }
            Err(e) => panic!("{name}: expected Checkpoint error, got {e}"),
            Ok(_) => panic!("{name}: cross-precision resume must be rejected"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
