//! Property-based tests (proptest) on the core invariants:
//! random circuits through every engine, random bit permutations, random
//! cluster fusions — all must preserve unitarity/norm and agree with the
//! dense reference.

use proptest::prelude::*;
use qsim45::circuit::dense::simulate_dense;
use qsim45::circuit::{Circuit, Gate};
use qsim45::core::single::strip_initial_hadamards;
use qsim45::core::{DistConfig, DistSimulator, SingleNodeSimulator};
use qsim45::kernels::apply::KernelConfig;
use qsim45::sched::{plan, SchedulerConfig};
use qsim45::util::bits::BitPermutation;
use qsim45::util::complex::max_dist;

/// Strategy: a random gate on `n` qubits.
fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    let q3 = (0..n, 0..n, 0..n).prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c);
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::T),
        q.clone().prop_map(Gate::Tdg),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.clone().prop_map(Gate::Z),
        q.clone().prop_map(Gate::SqrtX),
        q.clone().prop_map(Gate::SqrtY),
        (q.clone(), -3.0f64..3.0).prop_map(|(q, t)| Gate::Rz(q, t)),
        (q.clone(), -3.0f64..3.0).prop_map(|(q, t)| Gate::Rx(q, t)),
        (q, -3.0f64..3.0).prop_map(|(q, t)| Gate::Ry(q, t)),
        q2.clone().prop_map(|(a, b)| Gate::CZ(a, b)),
        q2.clone().prop_map(|(a, b)| Gate::CNot {
            target: a,
            control: b
        }),
        q2.clone().prop_map(|(a, b)| Gate::Swap(a, b)),
        (q2, -3.0f64..3.0).prop_map(|((a, b), t)| Gate::CPhase(a, b, t)),
        q3.clone().prop_map(|(a, b, c)| Gate::CCZ(a, b, c)),
        q3.prop_map(|(a, b, c)| Gate::Toffoli {
            target: a,
            c1: b,
            c2: c
        }),
    ]
}

fn arb_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_node_matches_dense_on_random_circuits(c in arb_circuit(6, 40)) {
        let reference = simulate_dense::<f64>(&c);
        let out = SingleNodeSimulator::default().run(&c);
        prop_assert!(max_dist(out.state.amplitudes(), &reference) < 1e-9);
    }

    #[test]
    fn distributed_matches_dense_on_random_circuits(c in arb_circuit(6, 30)) {
        let reference = simulate_dense::<f64>(&c);
        let (exec, uniform) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(4, 3));
        schedule.verify(&exec);
        let sim = DistSimulator::new(DistConfig {
            n_ranks: 4,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            ..Default::default()
        });
        let out = sim.run(&exec, &schedule, uniform);
        let state = out.state.unwrap();
        prop_assert!(max_dist(&state, &reference) < 1e-9,
            "distance {}", max_dist(&state, &reference));
    }

    #[test]
    fn f32_tracks_f64_within_depth_scaled_bound(c in arb_circuit(6, 40)) {
        let f64_out = SingleNodeSimulator::default().run(&c);
        let f32_out = SingleNodeSimulator::default().try_run_t::<f32>(&c).unwrap();
        let norm = f32_out.state.norm_sqr() as f64;
        prop_assert!((norm - 1.0).abs() < 1e-4, "f32 norm {}", norm);
        // Rounding error grows with circuit depth; a unitary circuit
        // accumulates O(eps) per gate, so budget eps-per-gate with
        // headroom rather than a flat tolerance.
        let bound = 2e-6 * (c.len() as f64 + 1.0);
        let mut worst = 0.0f64;
        for (a, b) in f64_out.state.amplitudes().iter().zip(f32_out.state.amplitudes()) {
            worst = worst
                .max((a.re - b.re as f64).abs())
                .max((a.im - b.im as f64).abs());
        }
        prop_assert!(worst < bound, "f32 drift {:e} exceeds {:e} at {} gates",
            worst, bound, c.len());
    }

    #[test]
    fn f32_distributed_matches_f32_single_node(c in arb_circuit(6, 30)) {
        let single = SingleNodeSimulator {
            kernel: KernelConfig::sequential(),
            ..Default::default()
        }.try_run_t::<f32>(&c).unwrap();
        let (exec, uniform) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(4, 3));
        let sim = DistSimulator::new(DistConfig {
            n_ranks: 4,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            ..Default::default()
        });
        let state = sim.try_run_t::<f32>(&exec, &schedule, uniform).unwrap().state.unwrap();
        let mut worst = 0.0f64;
        for (a, b) in single.state.amplitudes().iter().zip(&state) {
            worst = worst
                .max((a.re as f64 - b.re as f64).abs())
                .max((a.im as f64 - b.im as f64).abs());
        }
        prop_assert!(worst < 2e-6 * (c.len() as f64 + 1.0), "drift {:e}", worst);
    }

    #[test]
    fn norm_preserved_under_random_circuits(c in arb_circuit(8, 60)) {
        let out = SingleNodeSimulator::default().run(&c);
        let norm = out.state.norm_sqr();
        prop_assert!((norm - 1.0).abs() < 1e-8, "norm {norm}");
    }

    #[test]
    fn schedule_covers_every_gate_exactly_once(
        c in arb_circuit(7, 50),
        l in 4u32..7,
        kmax in 2u32..5,
    ) {
        let schedule = plan(&c, &SchedulerConfig::distributed(l, kmax));
        schedule.verify(&c); // panics on violation
        let mut seen = vec![false; c.len()];
        for stage in &schedule.stages {
            for op in &stage.ops {
                for &gi in op.gate_indices() {
                    prop_assert!(!seen[gi]);
                    seen[gi] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bit_permutations_compose_and_invert(
        map in prop::sample::subsequence((0..8u32).collect::<Vec<_>>(), 8)
            .prop_shuffle()
    ) {
        let p = BitPermutation::new(map);
        let inv = p.inverse();
        for i in 0..256usize {
            prop_assert_eq!(inv.apply(p.apply(i)), i);
        }
        prop_assert!(p.then(&inv).is_identity());
        // Transposition decomposition reconstructs the permutation.
        let mut q = BitPermutation::identity(8);
        for (a, b) in p.transpositions() {
            q = q.then(&BitPermutation::transposition(8, a, b));
        }
        for i in 0..256usize {
            prop_assert_eq!(q.apply(i), p.apply(i));
        }
    }

    #[test]
    fn fused_cluster_matrices_stay_unitary(c in arb_circuit(6, 50)) {
        let schedule = plan(&c, &SchedulerConfig::single_node(6, 4));
        for stage in &schedule.stages {
            for op in &stage.ops {
                if let qsim45::sched::StageOp::Cluster(cl) = op {
                    prop_assert!(cl.matrix.unitarity_residual() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn baseline_and_scheduled_agree_on_entropy(c in arb_circuit(6, 30)) {
        let single = SingleNodeSimulator::default().run(&c);
        let mut base = qsim45::core::BaselineSimulator::new(
            1,
            KernelConfig::sequential(),
        );
        base.gather_state = false;
        let out = base.run(&c);
        prop_assert!((out.entropy - single.state.entropy()).abs() < 1e-8);
    }
}
