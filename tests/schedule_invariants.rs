//! Full-scale scheduling invariants: the paper's communication claims are
//! pure pre-computation, so they are asserted here at the real 30–49
//! qubit sizes (no amplitudes are ever allocated).

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::sched::{global_gate_count, plan, CommStats, SchedulerConfig, StageOp};
use std::time::Instant;

fn circuit(rows: u32, cols: u32, depth: u32) -> qsim45::circuit::Circuit {
    supremacy_circuit(&SupremacySpec {
        rows,
        cols,
        depth,
        seed: 0,
    })
}

#[test]
fn paper_swap_counts_at_full_scale() {
    // §3.5/§4.1.2: depth-25 42- and 45-qubit circuits need exactly 2
    // global-to-local swaps with 30 local qubits.
    for (rows, cols) in [(7u32, 6u32), (9, 5)] {
        let c = circuit(rows, cols, 25);
        let s = plan(&c, &SchedulerConfig::distributed(30, 4));
        s.verify(&c);
        assert_eq!(
            s.n_swaps(),
            2,
            "{}x{} should need exactly 2 swaps",
            rows,
            cols
        );
    }
    // 36 qubits: paper reports 1 (best case) to 2; 49 qubits at l=30:
    // our instances (different CZ-pattern order) need <= 3.
    let s36 = plan(&circuit(6, 6, 25), &SchedulerConfig::distributed(30, 4));
    assert!(s36.n_swaps() <= 2, "36q: {} swaps", s36.n_swaps());
    let s49 = plan(&circuit(7, 7, 25), &SchedulerConfig::distributed(30, 4));
    assert!(s49.n_swaps() <= 3, "49q l=30: {} swaps", s49.n_swaps());
}

#[test]
fn paper_49_qubit_projection_needs_two_swaps() {
    // §5: "the simulation of a 49-qubit quantum supremacy circuit would
    // require only two global-to-local swap operations" — at the 8192-
    // node configuration (g = 13, l = 36).
    let c = circuit(7, 7, 25);
    let s = plan(&c, &SchedulerConfig::distributed(36, 4));
    s.verify(&c);
    assert_eq!(s.n_swaps(), 2, "49q l=36: {} swaps", s.n_swaps());
}

#[test]
fn swap_count_mostly_independent_of_local_qubits() {
    // Fig. 5a's key property: l ∈ {29..32} changes swaps by at most 1,
    // which is what makes strong scaling work.
    let c = circuit(7, 6, 25);
    let swaps: Vec<usize> = [29u32, 30, 31, 32]
        .iter()
        .map(|&l| plan(&c, &SchedulerConfig::distributed(l, 4)).n_swaps())
        .collect();
    let min = *swaps.iter().min().unwrap();
    let max = *swaps.iter().max().unwrap();
    assert!(max - min <= 1, "swap counts {swaps:?} vary too much with l");
}

#[test]
fn specialization_saves_a_swap_at_45_qubits() {
    // §3.5: "For 42- and 45-qubit circuits, 2 global-to-local swaps are
    // necessary, whereas 3 are required without gate specialization."
    let c = circuit(9, 5, 25);
    let with = plan(&c, &SchedulerConfig::distributed(30, 4));
    let mut cfg = SchedulerConfig::distributed(30, 4);
    cfg.specialize_diagonal = false;
    let without = plan(&c, &cfg);
    assert_eq!(with.n_swaps(), 2);
    assert!(
        without.n_swaps() >= 3,
        "without specialization: {}",
        without.n_swaps()
    );
}

#[test]
fn planning_stays_within_paper_time_budget() {
    // §3.6.1: "this pre-computation terminates in 1–3 seconds on a
    // laptop" (Python). The Rust scheduler must stay inside that.
    let c = circuit(9, 5, 25);
    let t0 = Instant::now();
    let s = plan(&c, &SchedulerConfig::distributed(30, 4));
    let dt = t0.elapsed().as_secs_f64();
    s.verify(&c);
    assert!(dt < 3.0, "planning took {dt:.2} s");
}

#[test]
fn table1_cluster_trends() {
    // Table 1: clusters decrease with kmax and the mean gates/cluster
    // exceeds kmax for every size.
    for (rows, cols, paper_gates) in [
        (6u32, 5u32, 369usize),
        (6, 6, 447),
        (7, 6, 528),
        (9, 5, 569),
    ] {
        let c = circuit(rows, cols, 25);
        let n = rows * cols;
        let l = 30.min(n);
        // Gate totals within 8 % of the paper (pattern-order dependent).
        assert!(
            (c.len() as i64 - paper_gates as i64).unsigned_abs() as usize <= paper_gates * 8 / 100,
            "{n}q: {} gates vs paper {paper_gates}",
            c.len()
        );
        let mut prev = usize::MAX;
        for kmax in [3u32, 4, 5] {
            let s = plan(&c, &SchedulerConfig::distributed(l, kmax));
            assert!(
                s.n_clusters() <= prev,
                "{n}q kmax={kmax}: clusters must not increase with kmax"
            );
            assert!(
                s.gates_per_cluster() > kmax as f64,
                "{n}q kmax={kmax}: only {:.2} gates/cluster",
                s.gates_per_cluster()
            );
            prev = s.n_clusters();
        }
    }
}

#[test]
fn comm_reduction_is_an_order_of_magnitude() {
    // §4.1.2's estimate: ~50 global gates vs 2 swaps → 12.5x for the
    // 42-qubit circuit. Ours must land in the same regime (> 8x).
    let c = circuit(7, 6, 25);
    let s = plan(&c, &SchedulerConfig::distributed(30, 4));
    let gg = global_gate_count(&c, 30, true);
    let stats = CommStats::new(42, 30, gg, s.n_swaps(), 16);
    assert!(
        stats.expected_reduction() > 8.0,
        "expected reduction only {:.1}x ({} global gates, {} swaps)",
        stats.expected_reduction(),
        gg,
        s.n_swaps()
    );
}

#[test]
fn every_cluster_is_unitary_and_local_at_45_qubits() {
    let c = circuit(9, 5, 25);
    let s = plan(&c, &SchedulerConfig::distributed(30, 4));
    let mut total_gates = 0usize;
    for stage in &s.stages {
        for op in &stage.ops {
            total_gates += op.gate_indices().len();
            if let StageOp::Cluster(cl) = op {
                assert!(cl.qubits.iter().all(|&q| q < 30));
                assert!(cl.qubits.len() <= 4);
                assert!(cl.matrix.unitarity_residual() < 1e-9);
            }
        }
    }
    assert_eq!(total_gates, c.len(), "every gate scheduled exactly once");
}

#[test]
fn deeper_circuits_need_monotonically_more_comm() {
    let mut prev_gg = 0usize;
    for depth in [10u32, 20, 30, 40, 50] {
        let c = circuit(7, 6, depth);
        let gg = global_gate_count(&c, 30, true);
        assert!(gg >= prev_gg, "depth {depth}: global gates decreased");
        prev_gg = gg;
    }
}
