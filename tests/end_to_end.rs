//! Cross-crate integration: the four execution paths — dense reference,
//! single-node scheduled engine, distributed engine, per-gate baseline —
//! must produce identical physics on the paper's workload.

use qsim45::circuit::dense::simulate_dense;
use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::circuit::Circuit;
use qsim45::core::single::strip_initial_hadamards;
use qsim45::core::{BaselineSimulator, DistConfig, DistSimulator, SingleNodeSimulator};
use qsim45::kernels::apply::KernelConfig;
use qsim45::sched::{plan, SchedulerConfig};
use qsim45::util::c64;
use qsim45::util::complex::max_dist;

fn supremacy(rows: u32, cols: u32, depth: u32, seed: u64) -> Circuit {
    supremacy_circuit(&SupremacySpec {
        rows,
        cols,
        depth,
        seed,
    })
}

fn run_dist(circuit: &Circuit, ranks: usize, kmax: u32) -> Vec<c64> {
    let n = circuit.n_qubits();
    let l = n - ranks.trailing_zeros();
    let (exec, uniform) = strip_initial_hadamards(circuit);
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, kmax));
    schedule.verify(&exec);
    let sim = DistSimulator::new(DistConfig {
        n_ranks: ranks,
        kernel: KernelConfig::sequential(),
        gather_state: true,
        ..Default::default()
    });
    sim.run(&exec, &schedule, uniform).state.unwrap()
}

fn run_baseline(circuit: &Circuit, ranks: usize) -> Vec<c64> {
    let mut sim = BaselineSimulator::new(ranks, KernelConfig::sequential());
    sim.gather_state = true;
    sim.run(circuit).state.unwrap()
}

#[test]
fn four_engines_agree_on_small_supremacy_circuit() {
    let c = supremacy(3, 3, 16, 42);
    let reference = simulate_dense::<f64>(&c);
    let single = SingleNodeSimulator::default().run(&c);
    assert!(max_dist(single.state.amplitudes(), &reference) < 1e-10);
    for ranks in [2usize, 4] {
        let dist = run_dist(&c, ranks, 3);
        assert!(
            max_dist(&dist, &reference) < 1e-10,
            "distributed engine diverges at {ranks} ranks"
        );
        let base = run_baseline(&c, ranks);
        assert!(
            max_dist(&base, &reference) < 1e-10,
            "baseline engine diverges at {ranks} ranks"
        );
    }
}

#[test]
fn engines_agree_on_larger_circuit_without_dense_reference() {
    // 12 qubits is beyond comfortable dense-matrix territory; the
    // single-node engine (itself validated against the dense reference
    // at 9–10 qubits) becomes the baseline.
    let c = supremacy(3, 4, 25, 7);
    let single = SingleNodeSimulator::default().run(&c);
    for ranks in [2usize, 8] {
        let dist = run_dist(&c, ranks, 4);
        assert!(
            max_dist(&dist, single.state.amplitudes()) < 1e-9,
            "ranks={ranks}"
        );
    }
    let base = run_baseline(&c, 4);
    assert!(max_dist(&base, single.state.amplitudes()) < 1e-9);
}

#[test]
fn all_kmax_values_and_rank_counts_preserve_entropy() {
    let c = supremacy(4, 3, 20, 11);
    let reference = SingleNodeSimulator::default().run(&c).state.entropy();
    for kmax in [2u32, 4, 5] {
        for ranks in [2usize, 4] {
            let n = c.n_qubits();
            let l = n - ranks.trailing_zeros();
            let (exec, uniform) = strip_initial_hadamards(&c);
            let schedule = plan(&exec, &SchedulerConfig::distributed(l, kmax));
            let sim = DistSimulator::new(DistConfig {
                n_ranks: ranks,
                kernel: KernelConfig::sequential(),
                gather_state: false,
                ..Default::default()
            });
            let out = sim.run(&exec, &schedule, uniform);
            assert!(
                (out.entropy - reference).abs() < 1e-8,
                "kmax={kmax} ranks={ranks}: {} vs {reference}",
                out.entropy
            );
            assert!((out.norm - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn scheduler_ablations_do_not_change_physics() {
    let c = supremacy(3, 3, 20, 3);
    let reference = simulate_dense::<f64>(&c);
    let (exec, uniform) = strip_initial_hadamards(&c);
    let configs = [
        SchedulerConfig::distributed(7, 3),
        SchedulerConfig::naive(7, 3),
        {
            let mut cfg = SchedulerConfig::distributed(7, 3);
            cfg.specialize_diagonal = false;
            cfg
        },
        {
            let mut cfg = SchedulerConfig::distributed(7, 3);
            cfg.adjust_swaps = false;
            cfg.worst_case_dense = false;
            cfg
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        let schedule = plan(&exec, cfg);
        schedule.verify(&exec);
        let sim = DistSimulator::new(DistConfig {
            n_ranks: 4,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            ..Default::default()
        });
        let out = sim.run(&exec, &schedule, uniform);
        let state = out.state.unwrap();
        assert!(
            max_dist(&state, &reference) < 1e-10,
            "ablation config {i} changed the physics"
        );
    }
}

#[test]
fn f32_distributed_run_tracks_f64() {
    // §5: single precision doubles the reachable qubit count. The f32
    // path runs through the same scheduler; amplitudes agree to ~1e-4.
    let c = supremacy(3, 3, 12, 19);
    let single64 = SingleNodeSimulator::default().run(&c);
    let state32: qsim45::core::StateVector<f32> = single64.state.convert();
    // Direct f32 execution of the same schedule.
    let (exec, _uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::single_node(9, 4));
    let mut s32 = qsim45::core::StateVector::<f32>::uniform(9);
    let cfg = KernelConfig::sequential();
    for stage in &schedule.stages {
        for op in &stage.ops {
            match op {
                qsim45::sched::StageOp::Cluster(cl) => {
                    let m32 = cl.matrix.convert::<f32>();
                    s32.apply(&cl.qubits, &m32, &cfg);
                }
                qsim45::sched::StageOp::Diagonal(d) => {
                    let d32: Vec<qsim45::util::c32> = d.diag.iter().map(|x| x.convert()).collect();
                    s32.apply_diagonal(&d.positions, &d32);
                }
            }
        }
    }
    for (a, b) in s32.amplitudes().iter().zip(state32.amplitudes()) {
        assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
    }
}

#[test]
fn distributed_with_parallel_kernels_inside_ranks() {
    // Rank threads and rayon kernel workers must compose: run with the
    // default (parallel, SIMD) kernel config inside every rank.
    let c = supremacy(3, 4, 20, 21);
    let single = SingleNodeSimulator::default().run(&c);
    let (exec, uniform) = strip_initial_hadamards(&c);
    let n = c.n_qubits();
    let ranks = 4usize;
    let schedule = plan(&exec, &SchedulerConfig::distributed(n - 2, 4));
    let sim = DistSimulator::new(DistConfig {
        n_ranks: ranks,
        kernel: KernelConfig::default(),
        gather_state: true,
        ..Default::default()
    });
    let out = sim.run(&exec, &schedule, uniform);
    let state = out.state.unwrap();
    assert!(max_dist(&state, single.state.amplitudes()) < 1e-9);
}

#[test]
fn comm_bytes_scale_with_swap_count() {
    let c = supremacy(3, 4, 25, 0);
    let n = c.n_qubits();
    let ranks = 4usize;
    let l = n - 2;
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
    let sim = DistSimulator::new(DistConfig {
        n_ranks: ranks,
        kernel: KernelConfig::sequential(),
        gather_state: false,
        ..Default::default()
    });
    let out = sim.run(&exec, &schedule, uniform);
    // Each swap: every rank ships (ranks-1)/ranks of 2^l amplitudes.
    let per_swap = (ranks as u64) * (1u64 << l) * 16 * (ranks as u64 - 1) / ranks as u64;
    let expected = per_swap * schedule.n_swaps() as u64;
    // Reductions add a handful of 8-byte messages.
    let slack = 1024;
    assert!(
        out.fabric.total_bytes_sent >= expected && out.fabric.total_bytes_sent <= expected + slack,
        "bytes {} vs expected {expected}",
        out.fabric.total_bytes_sent
    );
}
