//! Backend equivalence: the same circuit executed by the in-memory
//! distributed engine, the out-of-core engine and the single-node engine
//! must produce identical physics — the property that justifies the §5
//! claim that the slow tier (network or SSD) is interchangeable when the
//! schedule only needs two all-to-alls.
//!
//! Every engine is driven through the unified [`Backend`] trait (the
//! conformance half of the contract lives in `tests/backend_trait.rs`):
//! the planner is deterministic, so two backends planning the same
//! circuit at the same partition count execute the identical schedule —
//! which is what makes the `== 0.0` bit-exactness assertions below
//! meaningful.

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::circuit::Circuit;
use qsim45::core::{
    Backend, BackendOutcome, BackendPlan, BackendStats, DistBackend, DistConfig, DistSimulator,
    SingleBackend, SingleNodeSimulator,
};
use qsim45::kernels::{KernelConfig, SweepDispatch};
use qsim45::ooc::{Codec, OocBackend, OocConfig, OocSimulator};
use qsim45::util::complex::max_dist;

fn workload() -> Circuit {
    supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 20,
        seed: 77,
    })
}

fn dist_backend(n_ranks: usize) -> DistBackend {
    DistBackend::new(DistSimulator::new(DistConfig {
        n_ranks,
        kernel: KernelConfig::sequential(),
        ..Default::default()
    }))
}

fn ooc_backend<R: SweepDispatch>(n_chunks: usize, compress: Codec) -> OocBackend<R> {
    OocBackend::new(
        OocSimulator::<R>::new(OocConfig {
            compress,
            ..OocConfig::sequential()
        }),
        n_chunks,
    )
}

/// Plan + gathered run through the trait.
fn run_gathered<R: SweepDispatch>(
    b: &mut dyn Backend<R>,
    c: &Circuit,
) -> (BackendPlan, BackendOutcome<R>) {
    b.gather_state(true);
    let plan = b.plan(c).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
    let out = b.run(&plan).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
    (plan, out)
}

#[test]
fn memory_and_disk_backends_agree_amplitude_for_amplitude() {
    let c = workload();
    let mut single = SingleBackend::new(SingleNodeSimulator::default());
    let (_, sout) = run_gathered::<f64>(&mut single, &c);
    let single_state = sout.state.unwrap();
    for g in [2u32, 3] {
        let mut dist = dist_backend(1usize << g);
        let (dplan, dout) = run_gathered::<f64>(&mut dist, &c);
        dplan.schedule.verify(&dplan.exec);
        let dist_state = dout.state.unwrap();

        // Out-of-core engine: same deterministic plan, disk data path.
        let mut ooc = ooc_backend::<f64>(1usize << g, Codec::None);
        let (_, oout) = run_gathered(&mut ooc, &c);
        let ooc_state = oout.state.unwrap();

        assert!(
            max_dist(&dist_state, &single_state) < 1e-9,
            "dist vs single, g={g}"
        );
        assert!(
            max_dist(&ooc_state, &dist_state) < 1e-12,
            "ooc vs dist must be bit-close, g={g}: {}",
            max_dist(&ooc_state, &dist_state)
        );
    }
}

#[test]
fn disk_backend_handles_schedules_with_multiple_swaps() {
    // Force many swaps with a small local window (l = n - 4).
    let c = workload();
    let mut ooc = ooc_backend::<f64>(16, Codec::None);
    let (plan, out) = run_gathered(&mut ooc, &c);
    assert!(plan.schedule.n_swaps() >= 1);
    let state = out.state.unwrap();
    let mut single = SingleBackend::new(SingleNodeSimulator::default());
    let (_, sout) = run_gathered::<f64>(&mut single, &c);
    assert!(max_dist(&state, &sout.state.unwrap()) < 1e-9);
    assert!((out.norm - 1.0).abs() < 1e-9);
    // Batching means one compute traversal per swap boundary.
    let BackendStats::Ooc { runs, .. } = out.stats else {
        panic!("ooc stats expected");
    };
    assert_eq!(runs, plan.schedule.n_swaps() + 1);
}

#[test]
fn ooc_traffic_grows_with_swap_count_not_gate_count() {
    // Same state size, two circuits with very different gate counts but
    // comparable swap counts: disk traffic must track swaps.
    let n = 12u32;
    let shallow = supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 8,
        seed: 1,
    });
    let deep = supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 40,
        seed: 1,
    });
    let run = |c: &Circuit| {
        let mut b = ooc_backend::<f64>(4, Codec::None);
        let plan = b.plan(c).unwrap();
        let out = b.run(&plan).unwrap();
        let BackendStats::Ooc { io, runs, .. } = out.stats else {
            panic!("ooc stats expected");
        };
        (
            c.len(),
            plan.schedule.n_swaps(),
            runs,
            io.bytes_read + io.bytes_written,
        )
    };
    let (g1, s1, r1, b1) = run(&shallow);
    let (g2, s2, r2, b2) = run(&deep);
    assert!(g2 > 3 * g1, "deep circuit must have many more gates");
    // The §5 property, sharpened by run batching: traffic is bounded by
    // the swap structure alone — one state sweep per swap boundary plus
    // the fused exchange passes — independent of gate count and of how
    // many stages the planner emitted.
    let state_bytes = (1u64 << n) * 16;
    let budget = |runs: usize, swaps: usize| state_bytes * (1 + 2 * runs as u64 + 4 * swaps as u64);
    assert!(b1 <= budget(r1, s1), "shallow traffic {b1}");
    assert!(b2 <= budget(r2, s2), "deep traffic {b2}");
    assert_eq!(r1, s1 + 1);
    assert_eq!(r2, s2 + 1);
    // Per-structure traffic must be roughly the same constant for both.
    let per1 = b1 as f64 / (r1 + 3 * s1) as f64;
    let per2 = b2 as f64 / (r2 + 3 * s2) as f64;
    let ratio = per2 / per1;
    assert!(
        (0.4..2.5).contains(&ratio),
        "per-structure traffic drifted: {per1:.0} vs {per2:.0} bytes"
    );
}

#[test]
fn f32_backends_agree_bit_for_bit() {
    // Precision tiering must not weaken the backend-equivalence story:
    // at f32 the chunk store's uniform init matches the distributed
    // engine's slice init bitwise, chunk compute replays the rank
    // compute, so OOC vs dist is exact equality — not a tolerance. The
    // single-node engine plans its own (undistributed) schedule, so it
    // agrees only up to f32 rounding.
    let c = workload();
    let mut single = SingleBackend::new(SingleNodeSimulator {
        kernel: KernelConfig::sequential(),
        ..Default::default()
    });
    let (_, sout) = run_gathered::<f32>(&mut single, &c);
    let single_state = sout.state.unwrap();
    for g in [2u32, 3] {
        let mut dist = dist_backend(1usize << g);
        let (_, dout) = run_gathered::<f32>(&mut dist, &c);
        let dist_state = dout.state.unwrap();

        let mut ooc = ooc_backend::<f32>(1usize << g, Codec::None);
        let (_, oout) = run_gathered(&mut ooc, &c);
        let ooc_state = oout.state.unwrap();

        assert_eq!(
            max_dist(&ooc_state, &dist_state),
            0.0,
            "ooc f32 vs dist f32 must be bit-exact, g={g}"
        );
        assert!((oout.norm - 1.0).abs() < 1e-4, "f32 norm {}", oout.norm);
        let mut worst = 0.0f64;
        for (a, b) in single_state.iter().zip(&dist_state) {
            worst = worst
                .max((a.re as f64 - b.re as f64).abs())
                .max((a.im as f64 - b.im as f64).abs());
        }
        assert!(
            worst < 1e-6,
            "single f32 vs dist f32 drift {worst:e}, g={g}"
        );
    }
}

#[test]
fn compressed_ooc_agrees_with_dist_bit_for_bit() {
    // The lossless chunk codec sits on the IO path only: every
    // amplitude that comes back from disk is the exact bytes that went
    // in, so compressed OOC vs the in-memory distributed engine is
    // exact equality — at both precisions — while writing fewer bytes
    // than the raw store.
    let c = workload();
    let g = 3u32;

    let mut dist = dist_backend(1usize << g);
    let (_, dout) = run_gathered::<f64>(&mut dist, &c);
    let dist64 = dout.state.unwrap();
    let mut ooc = ooc_backend::<f64>(1usize << g, Codec::ShuffleRle);
    let (_, oout) = run_gathered(&mut ooc, &c);
    let state = oout.state.unwrap();
    assert_eq!(
        max_dist(&state, &dist64),
        0.0,
        "compressed ooc f64 vs dist must be bit-exact"
    );
    let BackendStats::Ooc { io, .. } = &oout.stats else {
        panic!("ooc stats expected");
    };
    assert!(
        io.compression_ratio() > 1.0,
        "lossless codec must beat raw on this workload: ratio {}",
        io.compression_ratio()
    );
    assert!(
        io.bytes_written < io.logical_bytes_written,
        "encoded bytes on disk must undercut amplitude bytes"
    );

    let mut dist = dist_backend(1usize << g);
    let (_, dout) = run_gathered::<f32>(&mut dist, &c);
    let dist32 = dout.state.unwrap();
    let mut ooc = ooc_backend::<f32>(1usize << g, Codec::ShuffleRle);
    let (_, oout) = run_gathered(&mut ooc, &c);
    assert_eq!(
        max_dist(&oout.state.unwrap(), &dist32),
        0.0,
        "compressed ooc f32 vs dist must be bit-exact"
    );
}

#[test]
fn lossy_codec_bounds_the_error_it_introduces() {
    // `lossy-8` zeroes 8 low mantissa bits per component before
    // encoding — a relative error around 2^-44 at f64. The result may
    // differ from the exact state, but only within that budget (gates
    // are unitary, so per-pass truncation error cannot blow up).
    let c = workload();
    let mut exact = ooc_backend::<f64>(8, Codec::None);
    let (_, eout) = run_gathered(&mut exact, &c);
    let oracle = eout.state.unwrap();
    let mut lossy = ooc_backend::<f64>(8, Codec::Lossy(8));
    let (_, lout) = run_gathered(&mut lossy, &c);
    let state = lout.state.unwrap();
    let d = max_dist(&state, &oracle);
    assert!(d > 0.0, "lossy-8 should actually drop bits on this state");
    assert!(d < 1e-10, "lossy-8 error must stay tiny: {d:e}");
    assert!((lout.norm - 1.0).abs() < 1e-9, "norm {}", lout.norm);
}

#[test]
fn pipelining_and_batching_are_bitwise_invisible() {
    // The full data path (batched runs, async pipeline, compiled-stage
    // compute) against the synchronous per-gate baseline: not a single
    // bit may differ.
    let c = workload();
    let mut sync = OocBackend::new(
        OocSimulator::<f64>::new(OocConfig::sync_baseline(KernelConfig::sequential())),
        8,
    );
    let (_, sout) = run_gathered(&mut sync, &c);
    let oracle = sout.state.unwrap();
    let mut pipe = ooc_backend::<f64>(8, Codec::None);
    let (_, pout) = run_gathered(&mut pipe, &c);
    assert_eq!(max_dist(&pout.state.unwrap(), &oracle), 0.0);
    let BackendStats::Ooc { io, .. } = &pout.stats else {
        panic!("ooc stats expected");
    };
    assert!(io.traversals > 0);
}
