//! Backend equivalence: the same schedule executed by the in-memory
//! distributed engine, the out-of-core engine and the single-node engine
//! must produce identical physics — the property that justifies the §5
//! claim that the slow tier (network or SSD) is interchangeable when the
//! schedule only needs two all-to-alls.

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::circuit::Circuit;
use qsim45::core::single::{strip_initial_hadamards, SingleNodeSimulator};
use qsim45::core::{DistConfig, DistSimulator};
use qsim45::kernels::apply::KernelConfig;
use qsim45::ooc::OocSimulator;
use qsim45::sched::{plan, SchedulerConfig};
use qsim45::util::complex::max_dist;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("qsim45_backends_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn workload() -> Circuit {
    supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 20,
        seed: 77,
    })
}

#[test]
fn memory_and_disk_backends_agree_amplitude_for_amplitude() {
    let c = workload();
    let n = c.n_qubits();
    let single = SingleNodeSimulator::default().run(&c);
    let (exec, uniform) = strip_initial_hadamards(&c);
    for g in [2u32, 3] {
        let l = n - g;
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
        schedule.verify(&exec);

        // In-memory distributed engine.
        let dist = DistSimulator::new(DistConfig {
            n_ranks: 1usize << g,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            sub_chunks: None,
            tile_qubits: None,
        });
        let dist_state = dist.run(&exec, &schedule, uniform).state.unwrap();

        // Out-of-core engine, same schedule.
        let dir = tmpdir(&format!("g{g}"));
        let ooc = OocSimulator {
            kernel: KernelConfig::sequential(),
        };
        let (_, ooc_state) = ooc.run_gather(&dir, &schedule, uniform).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert!(
            max_dist(&dist_state, single.state.amplitudes()) < 1e-9,
            "dist vs single, g={g}"
        );
        assert!(
            max_dist(&ooc_state, &dist_state) < 1e-12,
            "ooc vs dist must be bit-close, g={g}: {}",
            max_dist(&ooc_state, &dist_state)
        );
    }
}

#[test]
fn disk_backend_handles_schedules_with_multiple_swaps() {
    // Force many swaps with a small local window.
    let c = workload();
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let l = n - 4;
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
    assert!(schedule.n_swaps() >= 1);
    let dir = tmpdir("multi");
    let ooc = OocSimulator {
        kernel: KernelConfig::sequential(),
    };
    let (out, state) = ooc.run_gather(&dir, &schedule, uniform).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let single = SingleNodeSimulator::default().run(&c);
    assert!(max_dist(&state, single.state.amplitudes()) < 1e-9);
    assert!((out.norm - 1.0).abs() < 1e-9);
}

#[test]
fn ooc_traffic_grows_with_swap_count_not_gate_count() {
    // Same state size, two circuits with very different gate counts but
    // comparable swap counts: disk traffic must track swaps.
    let n = 12u32;
    let l = n - 2;
    let shallow = supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 8,
        seed: 1,
    });
    let deep = supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 40,
        seed: 1,
    });
    let run = |c: &Circuit, tag: &str| {
        let (exec, uniform) = strip_initial_hadamards(c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
        let dir = tmpdir(tag);
        let ooc = OocSimulator {
            kernel: KernelConfig::sequential(),
        };
        let out = ooc.run(&dir, &schedule, uniform).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (
            c.len(),
            schedule.n_swaps(),
            schedule.stages.len(),
            out.io.bytes_read + out.io.bytes_written,
        )
    };
    let (g1, s1, st1, b1) = run(&shallow, "shallow");
    let (g2, s2, st2, b2) = run(&deep, "deep");
    assert!(g2 > 3 * g1, "deep circuit must have many more gates");
    // The §5 property: traffic is bounded by the stage/swap structure —
    // a constant number of state sweeps per stage and per swap — and is
    // independent of how many gates each stage fuses.
    let state_bytes = (1u64 << n) * 16;
    let budget =
        |stages: usize, swaps: usize| state_bytes * (2 + 2 * stages as u64 + 6 * swaps as u64);
    assert!(b1 <= budget(st1, s1), "shallow traffic {b1}");
    assert!(b2 <= budget(st2, s2), "deep traffic {b2}");
    // Per-structure traffic must be roughly the same constant for both.
    let per1 = b1 as f64 / (st1 + 3 * s1) as f64;
    let per2 = b2 as f64 / (st2 + 3 * s2) as f64;
    let ratio = per2 / per1;
    assert!(
        (0.4..2.5).contains(&ratio),
        "per-structure traffic drifted: {per1:.0} vs {per2:.0} bytes"
    );
}
