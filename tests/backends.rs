//! Backend equivalence: the same schedule executed by the in-memory
//! distributed engine, the out-of-core engine and the single-node engine
//! must produce identical physics — the property that justifies the §5
//! claim that the slow tier (network or SSD) is interchangeable when the
//! schedule only needs two all-to-alls.

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::circuit::Circuit;
use qsim45::core::single::{strip_initial_hadamards, SingleNodeSimulator};
use qsim45::core::{DistConfig, DistSimulator};
use qsim45::kernels::apply::KernelConfig;
use qsim45::ooc::{Codec, OocConfig, OocSimulator, ScratchDir};
use qsim45::sched::{plan, SchedulerConfig};
use qsim45::util::complex::max_dist;

fn workload() -> Circuit {
    supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 20,
        seed: 77,
    })
}

#[test]
fn memory_and_disk_backends_agree_amplitude_for_amplitude() {
    let c = workload();
    let n = c.n_qubits();
    let single = SingleNodeSimulator::default().run(&c);
    let (exec, uniform) = strip_initial_hadamards(&c);
    for g in [2u32, 3] {
        let l = n - g;
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
        schedule.verify(&exec);

        // In-memory distributed engine.
        let dist = DistSimulator::new(DistConfig {
            n_ranks: 1usize << g,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            ..Default::default()
        });
        let dist_state = dist.run(&exec, &schedule, uniform).state.unwrap();

        // Out-of-core engine (full pipeline), same schedule.
        let dir = ScratchDir::new(&format!("backends_g{g}"));
        let mut ooc = OocSimulator::sequential();
        let (_, ooc_state) = ooc.run_gather(dir.path(), &schedule, uniform).unwrap();

        assert!(
            max_dist(&dist_state, single.state.amplitudes()) < 1e-9,
            "dist vs single, g={g}"
        );
        assert!(
            max_dist(&ooc_state, &dist_state) < 1e-12,
            "ooc vs dist must be bit-close, g={g}: {}",
            max_dist(&ooc_state, &dist_state)
        );
    }
}

#[test]
fn disk_backend_handles_schedules_with_multiple_swaps() {
    // Force many swaps with a small local window.
    let c = workload();
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let l = n - 4;
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
    assert!(schedule.n_swaps() >= 1);
    let dir = ScratchDir::new("backends_multi");
    let mut ooc = OocSimulator::sequential();
    let (out, state) = ooc.run_gather(dir.path(), &schedule, uniform).unwrap();
    let single = SingleNodeSimulator::default().run(&c);
    assert!(max_dist(&state, single.state.amplitudes()) < 1e-9);
    assert!((out.norm - 1.0).abs() < 1e-9);
    // Batching means one compute traversal per swap boundary.
    assert_eq!(out.runs, schedule.n_swaps() + 1);
}

#[test]
fn ooc_traffic_grows_with_swap_count_not_gate_count() {
    // Same state size, two circuits with very different gate counts but
    // comparable swap counts: disk traffic must track swaps.
    let n = 12u32;
    let l = n - 2;
    let shallow = supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 8,
        seed: 1,
    });
    let deep = supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 40,
        seed: 1,
    });
    let run = |c: &Circuit, tag: &str| {
        let (exec, uniform) = strip_initial_hadamards(c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
        let dir = ScratchDir::new(tag);
        let mut ooc = OocSimulator::<f64>::sequential();
        let out = ooc.run(dir.path(), &schedule, uniform).unwrap();
        (
            c.len(),
            schedule.n_swaps(),
            out.runs,
            out.io.bytes_read + out.io.bytes_written,
        )
    };
    let (g1, s1, r1, b1) = run(&shallow, "backends_shallow");
    let (g2, s2, r2, b2) = run(&deep, "backends_deep");
    assert!(g2 > 3 * g1, "deep circuit must have many more gates");
    // The §5 property, sharpened by run batching: traffic is bounded by
    // the swap structure alone — one state sweep per swap boundary plus
    // the fused exchange passes — independent of gate count and of how
    // many stages the planner emitted.
    let state_bytes = (1u64 << n) * 16;
    let budget = |runs: usize, swaps: usize| state_bytes * (1 + 2 * runs as u64 + 4 * swaps as u64);
    assert!(b1 <= budget(r1, s1), "shallow traffic {b1}");
    assert!(b2 <= budget(r2, s2), "deep traffic {b2}");
    assert_eq!(r1, s1 + 1);
    assert_eq!(r2, s2 + 1);
    // Per-structure traffic must be roughly the same constant for both.
    let per1 = b1 as f64 / (r1 + 3 * s1) as f64;
    let per2 = b2 as f64 / (r2 + 3 * s2) as f64;
    let ratio = per2 / per1;
    assert!(
        (0.4..2.5).contains(&ratio),
        "per-structure traffic drifted: {per1:.0} vs {per2:.0} bytes"
    );
}

#[test]
fn f32_backends_agree_bit_for_bit() {
    // Precision tiering must not weaken the backend-equivalence story:
    // at f32 the chunk store's uniform init matches the distributed
    // engine's slice init bitwise, chunk compute replays the rank
    // compute, so OOC vs dist is exact equality — not a tolerance. The
    // single-node engine plans its own (undistributed) schedule, so it
    // agrees only up to f32 rounding.
    let c = workload();
    let n = c.n_qubits();
    let single = SingleNodeSimulator {
        kernel: KernelConfig::sequential(),
        ..Default::default()
    }
    .try_run_t::<f32>(&c)
    .unwrap();
    let (exec, uniform) = strip_initial_hadamards(&c);
    for g in [2u32, 3] {
        let l = n - g;
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
        let dist = DistSimulator::new(DistConfig {
            n_ranks: 1usize << g,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            ..Default::default()
        });
        let dist_state = dist
            .try_run_t::<f32>(&exec, &schedule, uniform)
            .unwrap()
            .state
            .unwrap();

        let dir = ScratchDir::new(&format!("backends32_g{g}"));
        let mut ooc = OocSimulator::<f32>::sequential();
        let (out, ooc_state) = ooc.run_gather(dir.path(), &schedule, uniform).unwrap();

        assert_eq!(
            max_dist(&ooc_state, &dist_state),
            0.0,
            "ooc f32 vs dist f32 must be bit-exact, g={g}"
        );
        assert!((out.norm - 1.0).abs() < 1e-4, "f32 norm {}", out.norm);
        let mut worst = 0.0f64;
        for (a, b) in single.state.amplitudes().iter().zip(&dist_state) {
            worst = worst
                .max((a.re as f64 - b.re as f64).abs())
                .max((a.im as f64 - b.im as f64).abs());
        }
        assert!(
            worst < 1e-6,
            "single f32 vs dist f32 drift {worst:e}, g={g}"
        );
    }
}

#[test]
fn compressed_ooc_agrees_with_dist_bit_for_bit() {
    // The lossless chunk codec sits on the IO path only: every
    // amplitude that comes back from disk is the exact bytes that went
    // in, so compressed OOC vs the in-memory distributed engine is
    // exact equality — at both precisions — while writing fewer bytes
    // than the raw store.
    let c = workload();
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let g = 3u32;
    let schedule = plan(&exec, &SchedulerConfig::distributed(n - g, 4));
    let dist = DistSimulator::new(DistConfig {
        n_ranks: 1usize << g,
        kernel: KernelConfig::sequential(),
        gather_state: true,
        ..Default::default()
    });

    let dist64 = dist.run(&exec, &schedule, uniform).state.unwrap();
    let dir = ScratchDir::new("backends_comp64");
    let mut ooc = OocSimulator::<f64>::new(OocConfig {
        compress: Codec::ShuffleRle,
        ..OocConfig::sequential()
    });
    let (out, state) = ooc.run_gather(dir.path(), &schedule, uniform).unwrap();
    assert_eq!(
        max_dist(&state, &dist64),
        0.0,
        "compressed ooc f64 vs dist must be bit-exact"
    );
    assert!(
        out.io.compression_ratio() > 1.0,
        "lossless codec must beat raw on this workload: ratio {}",
        out.io.compression_ratio()
    );
    assert!(
        out.io.bytes_written < out.io.logical_bytes_written,
        "encoded bytes on disk must undercut amplitude bytes"
    );

    let dist32 = dist
        .try_run_t::<f32>(&exec, &schedule, uniform)
        .unwrap()
        .state
        .unwrap();
    let dir = ScratchDir::new("backends_comp32");
    let mut ooc = OocSimulator::<f32>::new(OocConfig {
        compress: Codec::ShuffleRle,
        ..OocConfig::sequential()
    });
    let (_, state) = ooc.run_gather(dir.path(), &schedule, uniform).unwrap();
    assert_eq!(
        max_dist(&state, &dist32),
        0.0,
        "compressed ooc f32 vs dist must be bit-exact"
    );
}

#[test]
fn lossy_codec_bounds_the_error_it_introduces() {
    // `lossy-8` zeroes 8 low mantissa bits per component before
    // encoding — a relative error around 2^-44 at f64. The result may
    // differ from the exact state, but only within that budget (gates
    // are unitary, so per-pass truncation error cannot blow up).
    let c = workload();
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::distributed(n - 3, 4));
    let dir = ScratchDir::new("backends_exact");
    let mut exact = OocSimulator::sequential();
    let (_, oracle) = exact.run_gather(dir.path(), &schedule, uniform).unwrap();
    let dir = ScratchDir::new("backends_lossy");
    let mut lossy = OocSimulator::<f64>::new(OocConfig {
        compress: Codec::Lossy(8),
        ..OocConfig::sequential()
    });
    let (out, state) = lossy.run_gather(dir.path(), &schedule, uniform).unwrap();
    let d = max_dist(&state, &oracle);
    assert!(d > 0.0, "lossy-8 should actually drop bits on this state");
    assert!(d < 1e-10, "lossy-8 error must stay tiny: {d:e}");
    assert!((out.norm - 1.0).abs() < 1e-9, "norm {}", out.norm);
}

#[test]
fn pipelining_and_batching_are_bitwise_invisible() {
    // The full data path (batched runs, async pipeline, compiled-stage
    // compute) against the synchronous per-gate baseline: not a single
    // bit may differ.
    let c = workload();
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::distributed(n - 3, 4));
    let dir = ScratchDir::new("backends_sync");
    let mut sync = OocSimulator::<f64>::new(OocConfig::sync_baseline(KernelConfig::sequential()));
    let (_, oracle) = sync.run_gather(dir.path(), &schedule, uniform).unwrap();
    let dir = ScratchDir::new("backends_pipe");
    let mut pipe = OocSimulator::sequential();
    let (out, state) = pipe.run_gather(dir.path(), &schedule, uniform).unwrap();
    assert_eq!(max_dist(&state, &oracle), 0.0);
    assert!(out.io.traversals > 0);
}
