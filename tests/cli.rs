//! CLI contract smoke tests, driven against the real binary.

use std::process::Command;

fn qsim45() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsim45"))
}

#[test]
fn resume_without_a_checkpoint_dir_is_a_usage_error() {
    // `--resume` with nowhere to resume from used to be silently
    // ignored — the run restarted from scratch while the caller
    // believed it picked up where it left off. It must be a hard
    // usage error instead.
    let out = qsim45()
        .args(["run", "--qubits", "8", "--depth", "4", "--resume"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume requires --checkpoint-dir"),
        "unhelpful usage error: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("entropy"),
        "the run must not have executed: {stdout}"
    );
}

#[test]
fn resume_with_a_checkpoint_dir_is_accepted() {
    // The guard must reject only the missing-directory case: a
    // checkpointed run followed by a resume of the same directory
    // reproduces the run's observables.
    let dir = std::env::temp_dir().join(format!("qsim_cli_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let args = [
        "run",
        "--qubits",
        "8",
        "--depth",
        "4",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ];
    let first = qsim45().args(args).output().expect("binary runs");
    assert!(first.status.success(), "checkpointed run failed");
    let second = qsim45()
        .args(args)
        .arg("--resume")
        .output()
        .expect("binary runs");
    assert!(second.status.success(), "resume run failed");
    let observables = |bytes: &[u8]| {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| l.starts_with("entropy") || l.starts_with("norm"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(observables(&first.stdout), observables(&second.stdout));
    let _ = std::fs::remove_dir_all(&dir);
}
