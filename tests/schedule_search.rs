//! Schedule search end-to-end: a searched plan is just another valid
//! schedule — every engine must execute it to the same physics as the
//! greedy plan, the modeled cost must be monotone (search never returns
//! a plan it models worse than greedy), and the fingerprint-keyed cache
//! in front of the search must round-trip plans faithfully and reject
//! corrupted artifacts instead of loading them.

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::circuit::Circuit;
use qsim45::core::single::{strip_initial_hadamards, SingleNodeSimulator};
use qsim45::core::{plan_schedule, DistConfig, DistSimulator, PlanOptions, ScheduleMode};
use qsim45::kernels::apply::KernelConfig;
use qsim45::ooc::{OocSimulator, ScratchDir};
use qsim45::sched::{plan, SchedulerConfig};
use qsim45::telemetry::Telemetry;
use qsim45::util::complex::max_dist;

fn workload(seed: u64) -> Circuit {
    supremacy_circuit(&SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 20,
        seed,
    })
}

fn search_opts(budget: usize) -> PlanOptions {
    PlanOptions {
        mode: ScheduleMode::Search,
        search_budget: budget,
        ..PlanOptions::default()
    }
}

#[test]
fn searched_schedule_is_bit_exact_across_engines() {
    // The backend-equivalence property of tests/backends.rs, under a
    // searched plan: dist and OOC execute the identical schedule, so
    // they must agree bit for bit; the single-node engine plans its own
    // schedule and agrees to f64 tolerance.
    let c = workload(77);
    let n = c.n_qubits();
    let single = SingleNodeSimulator::default().run(&c);
    let (exec, uniform) = strip_initial_hadamards(&c);
    for g in [2u32, 3] {
        let base = SchedulerConfig::distributed(n - g, 4);
        let planned = plan_schedule(&exec, &base, &search_opts(16));
        planned.schedule.verify(&exec);

        let dist = DistSimulator::new(DistConfig {
            n_ranks: 1usize << g,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            ..Default::default()
        });
        let dist_state = dist.run(&exec, &planned.schedule, uniform).state.unwrap();

        let dir = ScratchDir::new(&format!("sched_search_g{g}"));
        let mut ooc = OocSimulator::sequential();
        let (_, ooc_state) = ooc
            .run_gather(dir.path(), &planned.schedule, uniform)
            .unwrap();

        assert_eq!(
            max_dist(&ooc_state, &dist_state),
            0.0,
            "ooc vs dist must be bit-exact on a searched plan, g={g}"
        );
        assert!(
            max_dist(&dist_state, single.state.amplitudes()) < 1e-9,
            "searched plan diverged from single-node physics, g={g}"
        );
    }
}

#[test]
fn search_is_cost_monotone_across_geometries() {
    // Whatever the search explores, what it returns never models worse
    // than greedy, never schedules more swaps, and always verifies.
    for (seed, g, kmax) in [(1u64, 2u32, 4u32), (2, 3, 4), (3, 2, 3), (5, 4, 4)] {
        let c = workload(seed);
        let n = c.n_qubits();
        let (exec, _) = strip_initial_hadamards(&c);
        let base = SchedulerConfig::distributed(n - g, kmax);
        let greedy = plan(&exec, &base);
        let planned = plan_schedule(&exec, &base, &search_opts(12));
        planned.schedule.verify(&exec);
        assert!(
            planned.best_cost <= planned.greedy_cost,
            "seed {seed}: searched plan modeled above greedy"
        );
        assert!(planned.schedule.n_swaps() <= greedy.n_swaps());
        if planned.adopted {
            assert!(planned.best_cost < planned.greedy_cost);
        } else {
            assert_eq!(planned.schedule.n_swaps(), greedy.n_swaps());
        }
    }
}

#[test]
fn schedule_cache_round_trips_and_skips_search() {
    let c = workload(9);
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let base = SchedulerConfig::distributed(n - 2, 4);
    let dir = ScratchDir::new("sched_cache_roundtrip");

    let telemetry = Telemetry::enabled();
    let opts = |t: &Telemetry| PlanOptions {
        mode: ScheduleMode::Search,
        cache_dir: Some(dir.path().to_path_buf()),
        search_budget: 12,
        telemetry: t.clone(),
        ..PlanOptions::default()
    };
    let cold = plan_schedule(&exec, &base, &opts(&Telemetry::disabled()));
    assert!(!cold.cache_hit);
    assert!(cold.candidates > 1, "cold run must actually search");

    let warm = plan_schedule(&exec, &base, &opts(&telemetry));
    assert!(warm.cache_hit, "second run must hit the cache");
    assert_eq!(warm.candidates, 1, "a hit spends no search budget");
    assert_eq!(
        warm.schedule.n_swaps(),
        cold.schedule.n_swaps(),
        "cached schedule differs from the one stored"
    );
    assert!(
        warm.tile_qubits.is_some(),
        "a hit must return the stored tile budget so autotune is skipped"
    );
    assert!(warm.plan_seconds <= cold.plan_seconds);
    let metrics = telemetry.metrics_json();
    assert!(metrics.contains("sched.cache_hit"));

    // The cached plan executes to the same physics as the cold one.
    let dist = DistSimulator::new(DistConfig {
        n_ranks: 4,
        kernel: KernelConfig::sequential(),
        gather_state: true,
        ..Default::default()
    });
    let a = dist.run(&exec, &cold.schedule, uniform).state.unwrap();
    let b = dist.run(&exec, &warm.schedule, uniform).state.unwrap();
    assert_eq!(max_dist(&a, &b), 0.0);
}

#[test]
fn corrupted_cache_artifacts_are_rejected_not_loaded() {
    let c = workload(13);
    let n = c.n_qubits();
    let (exec, _) = strip_initial_hadamards(&c);
    let base = SchedulerConfig::distributed(n - 2, 4);
    let dir = ScratchDir::new("sched_cache_corrupt");
    let opts = PlanOptions {
        mode: ScheduleMode::Search,
        cache_dir: Some(dir.path().to_path_buf()),
        search_budget: 12,
        ..PlanOptions::default()
    };
    let cold = plan_schedule(&exec, &base, &opts);
    assert!(!cold.cache_hit);

    // Flip one payload byte in every stored artifact.
    let mut flipped = 0;
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("bin") {
            continue;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        flipped += 1;
    }
    assert!(flipped > 0, "cold run must have stored an artifact");

    // The corrupted artifact must be a silent miss: the planner searches
    // again and lands on the same deterministic schedule.
    let replan = plan_schedule(&exec, &base, &opts);
    assert!(!replan.cache_hit, "corrupted artifact was served as a hit");
    assert!(replan.candidates > 1, "corrupt miss must re-search");
    assert_eq!(replan.schedule.n_swaps(), cold.schedule.n_swaps());

    // And the re-store repaired the artifact: next run hits again.
    let repaired = plan_schedule(&exec, &base, &opts);
    assert!(repaired.cache_hit);
}
