//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `Condvar` with parking_lot's poison-free API,
//! implemented over `std::sync`. Poisoned locks are recovered via
//! `into_inner` — parking_lot has no poisoning, so a panicked holder must
//! not wedge every other rank thread here either.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard`'s lock while waiting.
    /// parking_lot takes the guard by `&mut` (std consumes it), so the
    /// guard is moved out and the re-acquired guard written back.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the guard is read out, passed to std's consuming wait,
        // and the returned (re-locked) guard is written back before any
        // other access — no double drop and no use of a moved-out guard.
        // `wait` on a guard of this process's own mutex does not panic;
        // poisoning is recovered below.
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = self.0.wait(owned).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
        }
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_handshake() {
        let shared = Arc::new((Mutex::new(0usize), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*shared;
            *m.lock() = 7;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 7);
    }
}
