//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this path-patched crate
//! provides the (small) subset of rayon's API the workspace uses:
//! [`current_num_threads`], `IntoParallelIterator` for `Vec`,
//! `par_chunks`/`par_chunks_mut` on slices, and the `enumerate`/`map`/
//! `for_each`/`reduce` combinators. Work is distributed over
//! `std::thread::scope` workers pulling items from a shared queue, so the
//! parallel semantics (disjoint work, unordered execution) match rayon's;
//! only the scheduling sophistication differs.

use std::sync::Mutex;

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub mod iter {
    use super::*;

    /// An eager parallel iterator: the item list is materialized, then
    /// terminal operations fan the items out over scoped threads.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A lazily-mapped parallel iterator (`map` must defer so the mapping
    /// closure runs on the worker threads).
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    pub trait ParallelSlice<T: Sync> {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
            ParIter {
                items: self.chunks(chunk_size).collect(),
            }
        }
    }

    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
            ParIter {
                items: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    impl<T: Send> ParIter<T> {
        pub fn enumerate(self) -> ParIter<(usize, T)> {
            ParIter {
                items: self.items.into_iter().enumerate().collect(),
            }
        }

        pub fn map<U, F>(self, f: F) -> ParMap<T, F>
        where
            U: Send,
            F: Fn(T) -> U + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync,
        {
            drive(self.items, |t| f(t));
        }
    }

    impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
        /// Fold every mapped item into an accumulator per worker, then
        /// merge the per-worker results (rayon's `reduce` contract: `op`
        /// must be associative and `identity` its neutral element).
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
        where
            ID: Fn() -> U + Sync,
            OP: Fn(U, U) -> U + Sync,
        {
            let f = &self.f;
            let partials = drive_fold(self.items, &identity, |acc, t| op(acc, f(t)));
            partials
                .into_iter()
                .fold(identity(), |a, b| op(a, b))
        }
    }

    /// Run `f` over every item on up to `current_num_threads()` scoped
    /// workers pulling from a shared queue.
    fn drive<T: Send>(items: Vec<T>, f: impl Fn(T) + Sync) {
        let _ = drive_fold(items, &|| (), |(), t| f(t));
    }

    fn drive_fold<T: Send, A: Send>(
        items: Vec<T>,
        identity: &(impl Fn() -> A + Sync),
        fold: impl Fn(A, T) -> A + Sync,
    ) -> Vec<A> {
        let workers = current_num_threads().min(items.len());
        if workers <= 1 {
            return vec![items.into_iter().fold(identity(), fold)];
        }
        let queue = Mutex::new(items.into_iter());
        let partials = Mutex::new(Vec::with_capacity(workers));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut acc = identity();
                    loop {
                        let next = queue.lock().unwrap().next();
                        match next {
                            Some(t) => acc = fold(acc, t),
                            None => break,
                        }
                    }
                    partials.lock().unwrap().push(acc);
                });
            }
        });
        partials.into_inner().unwrap()
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}
