//! The [`Strategy`] trait, combinators, and the deterministic test RNG.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 — small, fast, and deterministic per test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// RNG for case `case`: distinct, reproducible streams per case index.
    pub fn for_case(case: u64) -> Self {
        Self::new(case.wrapping_mul(0xa076_1d64_78bd_642f).wrapping_add(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` 0 returns 0.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    pub fn shuffle<T>(&mut self, values: &mut [T]) {
        for i in (1..values.len()).rev() {
            let j = self.below(i + 1);
            values.swap(i, j);
        }
    }
}

/// A generator of random values (proptest's Strategy, minus shrinking).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }

    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.sample(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.reason);
    }
}

/// Values that `prop_shuffle` can permute.
pub trait Shuffleable {
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        rng.shuffle(self);
    }
}

#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let mut value = self.inner.sample(rng);
        value.shuffle(rng);
        value
    }
}

/// Uniform choice across boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        self.options[pick].sample(rng)
    }
}

/// Box a strategy for `Union` storage (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Numeric types whose half-open ranges can be sampled uniformly.
pub trait SampleUniform: Copy {
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * rng.next_f64()
    }
    fn successor(self) -> Self {
        // Inclusive f64 upper bounds keep measure-zero imprecision only.
        f64::from_bits(self.to_bits() + 1)
    }
}

impl SampleUniform for f32 {
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * rng.next_f64() as f32
    }
    fn successor(self) -> Self {
        f32::from_bits(self.to_bits() + 1)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(*self.start(), self.end().successor(), rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Length specification for `collection::vec`: an exact `usize` or a
/// half-open `Range<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi - self.lo <= 1 {
            self.lo
        } else {
            self.lo + rng.below(self.hi - self.lo)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..1000 {
            let v = (2u32..7).sample(&mut rng);
            assert!((2..7).contains(&v));
            let w = (1u32..=3).sample(&mut rng);
            assert!((1..=3).contains(&w));
            let f = (-1.5f64..2.5).sample(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_reaches_endpoints() {
        let mut rng = TestRng::for_case(9);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[(1u32..=3).sample(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn filter_and_map_compose() {
        let mut rng = TestRng::for_case(1);
        let s = (0u32..10, 0u32..10)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| a + b);
        for _ in 0..200 {
            let _ = s.sample(&mut rng);
        }
    }

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = TestRng::for_case(5);
        let s = crate::sample::subsequence((0..10u32).collect(), 4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert_eq!(v.len(), 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::for_case(7);
        let s = crate::sample::subsequence((0..8u32).collect(), 8).prop_shuffle();
        let mut v = s.sample(&mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..8u32).collect::<Vec<_>>());
    }
}
