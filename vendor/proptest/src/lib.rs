//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_shuffle`, range and tuple strategies, `collection::vec`,
//! `sample::subsequence`, `prop_oneof!`, and the `proptest!` macro.
//! Cases are generated from a deterministic per-case RNG; there is no
//! shrinking — a failing case reports its case index so it can be replayed
//! (generation is a pure function of that index).

pub mod strategy;

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, TestRng};

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy for a random `amount`-element subsequence of `values`
    /// (order preserved).
    pub fn subsequence<T: Clone>(values: Vec<T>, amount: usize) -> Subsequence<T> {
        assert!(
            amount <= values.len(),
            "subsequence of {amount} from {} values",
            values.len()
        );
        Subsequence { values, amount }
    }

    #[derive(Clone, Debug)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        amount: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // Partial Fisher-Yates over the index set picks `amount`
            // distinct indices; sorting restores the original order.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..self.amount {
                let j = i + rng.below(idx.len() - i);
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.amount].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// Per-test configuration; only the case count is meaningful here.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the stand-in keeps suites quick.
        Self { cases: 32 }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The proptest! item macro: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` that samples every argument `cases` times and runs the
/// body. `prop_assert*` failures report the deterministic case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::strategy::TestRng::for_case(case as u64);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )*
                    let outcome: ::core::result::Result<(), ::std::string::String> = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!("case {case}/{}: {message}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strategy) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Discard the current case when its inputs don't satisfy a precondition.
/// The stand-in counts a discarded case as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
