//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface this workspace's benches use: groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs its
//! closure for a bounded number of timed iterations and prints the median
//! per-iteration time — enough to compare kernels locally without the
//! statistics/plotting machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(self, _t: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, name, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(self.criterion, &label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    /// Median seconds per iteration of the most recent `iter` call.
    seconds_per_iter: f64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let mut samples = Vec::with_capacity(16);
        // One untimed warmup, then timed single-shot samples.
        black_box(routine());
        let budget = Instant::now();
        for _ in 0..16 {
            let t0 = Instant::now();
            black_box(routine());
            samples.push(t0.elapsed().as_secs_f64());
            if budget.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.seconds_per_iter = samples[samples.len() / 2];
    }
}

fn run_one(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        seconds_per_iter: f64::NAN,
    };
    let deadline = Instant::now() + criterion.measurement_time;
    let mut medians = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        f(&mut bencher);
        medians.push(bencher.seconds_per_iter);
        if Instant::now() > deadline {
            break;
        }
    }
    medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = medians[medians.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / median),
        None => String::new(),
    };
    println!("{label:<50} {:>12.3} us/iter{rate}", median * 1e6);
}

/// Identity function that defeats constant-folding of benchmark results.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
